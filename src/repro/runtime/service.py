"""The resumable online service: journal -> admission -> pipeline.

:class:`RuntimeService` hosts the preprocessor -> (sharded) locator ->
evaluator pipeline as a long-lived stream consumer:

* every offered raw alert is **journaled first** (write-ahead, with its
  admission decision), then run through the admission controller and --
  if admitted -- the pipeline;
* on the configured sim-time cadence the whole mutable pipeline state is
  **checkpointed** (see ``checkpoint.py``);
* after a crash, :meth:`RuntimeService.resume` loads the newest loadable
  checkpoint and replays the journal tail, reproducing the exact state
  -- incident ids included -- the uninterrupted run would have reached
  (``tests/runtime/test_kill_resume.py`` pins this);
* a :class:`MetricsRegistry` threads through every stage via the
  pipeline's observer hook; all its latency quantities are simulated
  time (REP004: no wall clocks in the core);
* an optional :class:`~repro.runtime.faults.ChaosPlan` turns the
  robustness machinery on: journal/checkpoint I/O runs under a bounded
  retry-with-backoff policy consulted against the plan's
  :class:`~repro.runtime.faults.FaultyIO` oracle (exhausted budgets shed
  the write, counted, never silent), planned shard crashes fire against
  a :class:`~repro.runtime.supervisor.SupervisedLocator` and are healed
  in the same ingest, and a
  :class:`~repro.runtime.health.SourceHealthTracker` feeds the
  pipeline's degraded-source awareness.  With no plan (or an empty one)
  none of this machinery is even constructed and the service is
  byte-identical to the pre-chaos runtime.
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.config import PRODUCTION_CONFIG, SkyNetConfig
from ..core.locator import SweepResult
from ..core.pipeline import IncidentReport, PipelineObserver, SkyNet
from ..monitors.base import RawAlert
from ..simulation.state import NetworkState
from ..topology.network import Topology
from .admission import AdmissionController
from .checkpoint import (
    CheckpointStore,
    _next_incident_id,
    pipeline_state_dict,
    restore_pipeline_state,
    set_incident_counter,
)
from .faults import (
    DATA_LOSS_CONFIDENCE,
    ChaosPlan,
    FaultyIO,
    RetryPolicy,
    chaos_or_none,
)
from .health import SourceHealthTracker
from .journal import AlertJournal, JournalCorruption
from .metrics import MetricsRegistry, registry_or_new
from .sharding import ShardedLocator
from .supervisor import ShardSupervision, SupervisedLocator
from .workers import MPShardedLocator, MPSupervisedLocator

JOURNAL_SUBDIR = "journal"
CHECKPOINT_SUBDIR = "checkpoints"

#: Locator execution backends (``RuntimeParams.backend`` / ``--backend``).
BACKENDS = ("inproc", "mp")


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`RuntimeService.resume` reconstructed."""

    checkpoint_seq: Optional[int]  # None = no checkpoint, full journal replay
    replayed_records: int
    corruptions: Tuple[JournalCorruption, ...]

    def render(self) -> str:
        base = (
            f"resumed from checkpoint seq={self.checkpoint_seq}"
            if self.checkpoint_seq is not None
            else "no checkpoint found; replaying full journal"
        )
        lines = [f"{base}; replayed {self.replayed_records} journal record(s)"]
        lines.extend(c.render() for c in self.corruptions)
        return "\n".join(lines)


class RuntimeObserver(PipelineObserver):
    """Feeds the metrics registry from the pipeline's observer hooks."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._raws = metrics.counter(
            "runtime_raw_alerts_total", "raw alerts fed to the pipeline"
        )
        self._structured = metrics.counter(
            "runtime_structured_alerts_total",
            "structured alerts emitted by the preprocessor",
        )
        self._sweeps = metrics.counter(
            "runtime_sweeps_total", "locator sweeps executed"
        )
        self._opened = metrics.counter(
            "runtime_incidents_opened_total", "incident trees generated"
        )
        self._closed = metrics.counter(
            "runtime_incidents_closed_total", "incident trees closed"
        )
        self._expired = metrics.counter(
            "runtime_records_expired_total", "main-tree records expired"
        )
        self._delivery_lag = metrics.histogram(
            "runtime_delivery_lag_seconds",
            "simulated lag between observation and collector delivery",
        )
        self._detection = metrics.histogram(
            "runtime_detection_latency_seconds",
            "simulated time from an incident's first alert to its opening sweep",
        )
        self._duration = metrics.histogram(
            "runtime_incident_duration_seconds",
            "simulated incident lifetime at close",
        )

    def on_raw(self, raw: RawAlert, emitted: List) -> None:
        self._raws.inc()
        self._structured.inc(len(emitted))
        self._delivery_lag.observe(raw.delivered_at - raw.timestamp)

    def on_sweep(self, now: float, result: SweepResult) -> None:
        self._sweeps.inc()
        self._opened.inc(len(result.opened))
        self._closed.inc(len(result.closed))
        self._expired.inc(result.expired_records)
        for incident in result.opened:
            self._detection.observe(max(0.0, now - incident.start_time))
        for incident in result.closed:
            self._duration.observe(
                max(0.0, incident.end_time - incident.start_time)
            )


class _FanoutObserver(PipelineObserver):
    """Broadcasts pipeline hooks to several observers, in order.

    The runtime's own :class:`RuntimeObserver` always comes first so the
    metrics a tap reads in its hooks are already up to date for the
    event being observed.
    """

    def __init__(self, observers: Tuple[PipelineObserver, ...]) -> None:
        self.observers = observers

    def on_raw(self, raw: RawAlert, emitted: List) -> None:
        for observer in self.observers:
            observer.on_raw(raw, emitted)

    def on_sweep(self, now: float, result: SweepResult) -> None:
        for observer in self.observers:
            observer.on_sweep(now, result)


class RuntimeService:
    """Sharded, checkpointable, backpressured hosting of the pipeline."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        directory: Optional[pathlib.Path] = None,
        metrics: Optional[MetricsRegistry] = None,
        chaos: Optional[ChaosPlan] = None,
        run_seed: int = 0,
        tap: Optional[PipelineObserver] = None,
    ) -> None:
        self.config = config or PRODUCTION_CONFIG
        params = self.config.runtime
        self.metrics = registry_or_new(metrics)
        self.admission = AdmissionController(params, metrics=self.metrics)
        self.observer = RuntimeObserver(self.metrics)
        #: extra pipeline observer (the gateway's incident tap); fanned
        #: out after the metrics observer and preserved across resume
        self.tap = tap
        #: optional provider of extra checkpoint state (``state["extras"]``)
        #: -- the gateway stores its sequencer/source-registry state here
        self.checkpoint_extras: Optional[Callable[[], Dict[str, object]]] = None
        # an empty plan is normalised away: no chaos machinery exists at
        # all unless something is actually scheduled
        self.chaos = chaos_or_none(chaos)
        self.run_seed = run_seed
        self._faulty: Optional[FaultyIO] = None
        self._retry_policy = RetryPolicy(
            max_attempts=params.io_max_attempts,
            base_backoff_s=params.io_base_backoff_s,
            max_backoff_s=params.io_max_backoff_s,
        )
        self._retry_rng = None
        self._pending_crashes: Tuple = ()
        self._fired_crashes: Set[Tuple[float, int]] = set()
        self._pending_correlated: Tuple = ()
        self._fired_correlated: Set[Tuple[float, Tuple[int, ...]]] = set()
        self._health: Optional[SourceHealthTracker] = None
        # kept for the correlated-crash rebuild path, which replays the
        # journal through a scratch pipeline over the same world
        self._topology = topology
        self._net_state = state
        backend = params.backend
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown locator backend {backend!r} (want one of {BACKENDS})"
            )
        locator: ShardedLocator
        supervised = False
        if self.chaos is not None:
            self._retry_rng = self.chaos.rng("retry", run_seed)
            if self.chaos.io_faults:
                self._faulty = FaultyIO(self.chaos.io_faults)
            if self.chaos.degrades_sources():
                self._health = SourceHealthTracker(self.chaos)
            if self.chaos.shard_crashes:
                self._pending_crashes = tuple(
                    sorted(
                        self.chaos.shard_crashes,
                        key=lambda c: (c.at, c.shard),
                    )
                )
            if self.chaos.correlated_crashes:
                self._pending_correlated = tuple(
                    sorted(
                        self.chaos.correlated_crashes,
                        key=lambda c: (c.at, c.shards),
                    )
                )
            supervised = self.chaos.crashes_shards()
        if supervised:
            locator = (
                MPSupervisedLocator(topology, self.config)
                if backend == "mp"
                else SupervisedLocator(topology, self.config)
            )
        elif backend == "mp":
            locator = MPShardedLocator(topology, self.config)
        else:
            locator = ShardedLocator(topology, self.config)
        pipeline_observer: PipelineObserver = self.observer
        if self.tap is not None:
            pipeline_observer = _FanoutObserver((self.observer, self.tap))
        self.pipeline = SkyNet(
            topology,
            config=self.config,
            state=state,
            locator=locator,
            observer=pipeline_observer,
        )
        if self._health is not None:
            self.pipeline.health = self._health
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.journal: Optional[AlertJournal] = None
        self.checkpoints: Optional[CheckpointStore] = None
        if self.directory is not None:
            self.journal = AlertJournal(
                self.directory / JOURNAL_SUBDIR, params.journal_segment_records
            )
            self.checkpoints = CheckpointStore(self.directory / CHECKPOINT_SUBDIR)
        self.recovery: Optional[RecoveryReport] = None
        self._seq = 0
        self._last_checkpoint_t = float("-inf")

    # -- ingest ------------------------------------------------------------

    @property
    def shards(self) -> int:
        locator = self.pipeline.locator
        return locator.shards if isinstance(locator, ShardedLocator) else 1

    def ingest(self, raw: RawAlert) -> List:
        """Offer one raw alert: journal, admission, pipeline, checkpoint.

        Write-ahead discipline: the admission decision is *derived*
        first, the journal entry (which records it) is written second,
        and only then is any state mutated.  If the journal write sheds
        after exhausting its retry budget, the alert is refused whole --
        counted, but with controller, pipeline and sequence untouched --
        so the journal on disk always describes exactly the alerts the
        service acted on and a resumed run replays to the same state.
        """
        if self._pending_crashes or self._pending_correlated:
            self._fire_shard_crashes(raw.delivered_at)
        decision = self.admission.decide(raw)
        if self.journal is not None:
            journal = self.journal
            seq = self._seq
            appended = self._io_attempt(
                "journal_append",
                raw.delivered_at,
                lambda: journal.append(
                    raw, seq, admitted=decision.admit, rung=decision.rung
                ),
            )
            if not appended:
                return []
        self.admission.apply(raw, decision)
        self._seq += 1
        if not decision.admit:
            return []
        emitted = self.pipeline.feed(raw)
        self._maybe_checkpoint(raw.delivered_at)
        self._update_gauges()
        return emitted

    def run(self, raws: Iterable[RawAlert]) -> "RuntimeService":
        for raw in raws:
            self.ingest(raw)
        return self

    def finish(self) -> None:
        """Close out the stream; final state is checkpointed if persisting."""
        self.pipeline.finish()
        self._update_gauges()
        if self.checkpoints is not None:
            self.checkpoint()

    # -- results -----------------------------------------------------------

    def reports(self) -> List[IncidentReport]:
        return self.pipeline.reports()

    def shed_counts(self) -> Dict[str, int]:
        return dict(self.admission.sheds)

    def degraded_sources(self) -> FrozenSet[str]:
        """Tools currently considered degraded (empty without a chaos plan)."""
        if self._health is None:
            return frozenset()
        return self._health.degraded_sources(self.pipeline.now)

    def _update_gauges(self) -> None:
        self.metrics.gauge(
            "runtime_open_incidents", "incident trees currently open"
        ).set(len(self.pipeline.locator.open_incidents))
        self.metrics.gauge(
            "runtime_live_locations", "alerting locations in the main tree"
        ).set(len(self.pipeline.locator.main_tree))
        self.metrics.gauge(
            "runtime_sim_time_seconds", "alert time the pipeline has reached"
        ).set(max(self.pipeline.now, 0.0))
        if self._health is not None:
            self.metrics.gauge(
                "runtime_degraded_sources",
                "monitoring tools currently past their staleness deadline",
            ).set(len(self.degraded_sources()))
        locator = self.pipeline.locator
        if isinstance(locator, MPShardedLocator):
            # per-worker counters are shipped at sweep barriers (with
            # each partition reply); aggregate the latest snapshots
            for key, value in locator.worker_counters().items():
                self.metrics.gauge(
                    f"runtime_worker_{key}",
                    f"worker-process {key.replace('_', ' ')} "
                    "(summed over shards, as of the last sweep barrier)",
                ).set(value)
            self.metrics.gauge(
                "runtime_workers_alive", "live locator worker processes"
            ).set(locator.workers_alive())

    # -- chaos: I/O retries and shard supervision ---------------------------

    def _io_attempt(
        self, op: str, now: float, fn: Callable[[], None]
    ) -> bool:
        """Run one I/O operation under the bounded retry policy.

        Without a chaos plan this is a direct call -- no wrapping, no
        counters, byte-identical to the pre-chaos service.  With one,
        each attempt first consults the :class:`FaultyIO` oracle and any
        ``OSError`` (injected or real) is retried with sim-clock
        exponential backoff, recorded as accounting in the metrics
        registry.  Returns ``False`` -- and counts a shed -- once the
        budget is exhausted; the caller decides the terminal fallback.
        """
        if self.chaos is None:
            fn()
            return True
        assert self._retry_rng is not None
        policy = self._retry_policy
        for attempt in range(policy.max_attempts):
            try:
                if self._faulty is not None:
                    self._faulty.check(op, now, attempt)
                fn()
                return True
            except OSError:
                self.metrics.counter(
                    "runtime_io_errors_total", "failed I/O attempts"
                ).inc()
                if attempt + 1 < policy.max_attempts:
                    self.metrics.counter(
                        "runtime_io_retries_total", "I/O attempts retried"
                    ).inc()
                    self.metrics.histogram(
                        "runtime_io_backoff_seconds",
                        "simulated backoff before each I/O retry",
                    ).observe(policy.backoff_s(attempt, self._retry_rng))
        self.metrics.counter(
            f"runtime_io_shed_{op}_total",
            f"{op} operations abandoned after exhausting the retry budget",
        ).inc()
        return False

    def _fire_shard_crashes(self, now: float) -> None:
        """Fire due planned shard crashes, then heal them immediately.

        A crash is due once stream time reaches its instant; the
        supervisor heals it in the same ingest -- before the pipeline
        touches the tree again -- so siblings and open incidents never
        observe the dead shard.  Fired crashes are remembered (and
        checkpointed) so kill-and-resume re-derives the same schedule.

        Correlated crashes additionally destroy the recovery snapshot of
        their ``lose_snapshots`` subset.  Those shards are rebuilt from
        the durable checkpoint + journal tail (:meth:`_rebuild_lost_shards`,
        exact, so the heal is indistinguishable from a local one); only
        when that second recovery tier is itself unavailable do they
        heal empty, with every open incident stamped at
        :data:`~repro.runtime.faults.DATA_LOSS_CONFIDENCE`.
        """
        locator = self.pipeline.locator
        if not isinstance(locator, ShardSupervision):
            return
        fired_any = False
        for crash in self._pending_crashes:
            key = (crash.at, crash.shard)
            if crash.at <= now and key not in self._fired_crashes:
                self._fired_crashes.add(key)
                locator.crash_shard(crash.shard)
                fired_any = True
                self.metrics.counter(
                    "runtime_shard_crashes_total",
                    "locator shards crashed by the chaos plan",
                ).inc()
        for event in self._pending_correlated:
            ckey = (event.at, event.shards)
            if event.at <= now and ckey not in self._fired_correlated:
                self._fired_correlated.add(ckey)
                fired_any = True
                self.metrics.counter(
                    "runtime_correlated_crashes_total",
                    "correlated multi-shard crash events fired",
                ).inc()
                for shard in event.shards:
                    locator.crash_shard(shard)
                    self.metrics.counter(
                        "runtime_shard_crashes_total",
                        "locator shards crashed by the chaos plan",
                    ).inc()
                for shard in event.lose_snapshots:
                    locator.invalidate_snapshot(shard)
                    self.metrics.counter(
                        "runtime_shard_snapshots_lost_total",
                        "per-shard recovery snapshots destroyed by the plan",
                    ).inc()
        if not fired_any:
            return
        lost = locator.lost_snapshots()
        rebuilt: Dict[int, bytes] = {}
        if lost:
            rebuilt = self._rebuild_lost_shards(lost, now)
            for index in sorted(rebuilt):
                locator.install_base(index, rebuilt[index])
                self.metrics.counter(
                    "runtime_shard_rebuilds_total",
                    "lost shards rebuilt from checkpoint + journal tail",
                ).inc()
        before_ops = locator.replayed_ops
        before_degraded = locator.degraded_heals
        restored = locator.heal_crashed()
        self.metrics.counter(
            "runtime_shard_restores_total",
            "crashed locator shards restored by the supervisor",
        ).inc(restored)
        self.metrics.counter(
            "runtime_shard_replayed_ops_total",
            "tree operations replayed while healing crashed shards",
        ).inc(locator.replayed_ops - before_ops)
        degraded = locator.degraded_heals - before_degraded
        if degraded:
            self.metrics.counter(
                "runtime_shard_degraded_heals_total",
                "shards healed empty after losing every recovery source",
            ).inc(degraded)
            self._stamp_data_loss(sorted(lost - set(rebuilt)))

    def _rebuild_lost_shards(
        self, lost: Set[int], now: float
    ) -> Dict[int, bytes]:
        """Rebuild lost shards' trees from checkpoint + journal, exactly.

        A scratch in-process pipeline is restored from the newest durable
        checkpoint and fed the journal tail up to (not including) the
        alert being ingested -- crashes fire before the current alert's
        append, so the scratch state is precisely the live pre-insert
        state and the extracted shard trees are what the dead shards
        held.  Returns ``{}`` (caller degrades) when there is no
        persistence directory, the ``journal_read`` scan is
        fault-exhausted, or the journal is corrupted/truncated short of
        the live frontier.

        The scratch never touches live state: the journal reader is a
        fresh handle-free instance (segments are only created on append),
        the checkpoint payload is unpickled from disk, and the global
        incident-id counter -- which scratch replay advances -- is
        restored to the live value on every exit path.
        """
        if (
            self.directory is None
            or self.checkpoints is None
            or self.journal is None
        ):
            return {}
        after_seq = -1
        payload: Optional[Dict[str, object]] = None
        found = self.checkpoints.latest()
        if found is not None:
            _ckpt_seq, payload = found
            after_seq = int(payload["seq"]) - 1  # type: ignore[arg-type]
        limit = self._seq - 1
        reader = AlertJournal(
            self.directory / JOURNAL_SUBDIR,
            self.config.runtime.journal_segment_records,
        )
        entries: List = []

        def _scan() -> None:
            del entries[:]
            for entry in reader.replay(after_seq=after_seq):
                if entry.seq > limit:
                    break
                entries.append(entry)

        if not self._io_attempt("journal_read", now, _scan):
            return {}
        last_seq = entries[-1].seq if entries else after_seq
        if reader.corruptions or last_seq != limit:
            # the journal cannot reach the live frontier: a rebuild from
            # it would be silently stale, so admit the loss instead
            return {}
        live_next_id = _next_incident_id(self.pipeline.locator)
        try:
            scratch = SkyNet(
                self._topology,
                config=self.config,
                state=self._net_state,
                locator=ShardedLocator(self._topology, self.config),
            )
            if payload is not None:
                restore_pipeline_state(
                    scratch, payload["pipeline"]  # type: ignore[arg-type]
                )
            for entry in entries:
                if entry.admitted:
                    scratch.feed(entry.raw)
            trees = scratch.locator.main_tree.shard_trees
            return {
                index: pickle.dumps(
                    trees[index], protocol=pickle.HIGHEST_PROTOCOL
                )
                for index in sorted(lost)
            }
        finally:
            set_incident_counter(live_next_id)

    def _stamp_data_loss(self, shards: List[int]) -> None:
        """Annotate every open incident with the admitted shard loss."""
        tags = [f"shard{index}-data-loss" for index in shards]
        stamped = 0
        for incident in self.pipeline.locator.open_incidents:
            incident.note_degradation(DATA_LOSS_CONFIDENCE, tags)
            stamped += 1
        if stamped:
            self.metrics.counter(
                "runtime_data_loss_stamped_incidents_total",
                "open incidents stamped with data-loss confidence",
            ).inc(stamped)

    # -- checkpointing -----------------------------------------------------

    def _maybe_checkpoint(self, now: float) -> None:
        interval = self.config.runtime.checkpoint_interval_s
        if self.checkpoints is None or interval <= 0:
            return
        if now - self._last_checkpoint_t >= interval:
            self.checkpoint(now)

    def checkpoint(self, now: Optional[float] = None) -> None:
        """Snapshot everything needed to resume at the current seq.

        Under a chaos plan both the journal fsync and the checkpoint
        save run inside the bounded retry policy; if either sheds, the
        checkpoint is skipped (counted, retried at the next cadence
        tick) -- the journal already holds every alert, so a later
        resume just replays a longer tail.  Nothing is ever lost to a
        failed checkpoint."""
        if self.checkpoints is None:
            raise RuntimeError("service has no persistence directory")
        when = now if now is not None else self.pipeline.now
        if self.journal is not None:
            if not self._io_attempt("journal_sync", when, self.journal.sync):
                self.metrics.counter(
                    "runtime_checkpoints_skipped_total",
                    "checkpoints skipped after I/O retry exhaustion",
                ).inc()
                return
        state: Dict[str, object] = {
            "seq": self._seq,
            "sim_now": self.pipeline.now,
            "pipeline": pipeline_state_dict(self.pipeline),
            "admission": self.admission.state_dict(),
            "metrics": self.metrics,
        }
        if self._health is not None:
            state["health"] = self._health.state_dict()
        if self._pending_crashes or self._pending_correlated:
            state["chaos"] = {
                "fired_crashes": sorted(self._fired_crashes),
                "fired_correlated": sorted(self._fired_correlated),
            }
        if self.checkpoint_extras is not None:
            state["extras"] = self.checkpoint_extras()
        checkpoints = self.checkpoints
        seq = self._seq
        saved = self._io_attempt(
            "checkpoint_save", when, lambda: checkpoints.save(seq, state)
        )
        if not saved:
            self.metrics.counter(
                "runtime_checkpoints_skipped_total",
                "checkpoints skipped after I/O retry exhaustion",
            ).inc()
            return
        locator = self.pipeline.locator
        if isinstance(locator, ShardSupervision):
            # refresh shard recovery bases only once the checkpoint is
            # durable, keeping both recovery sources aligned
            locator.snapshot_shards()
        self._last_checkpoint_t = when
        self.metrics.counter(
            "runtime_checkpoints_total", "snapshot checkpoints written"
        ).inc()
        if (
            self.config.runtime.journal_compaction
            and self.journal is not None
        ):
            listing = self.checkpoints.list()
            if listing:
                removed = self.journal.compact(listing[0].seq)
                if removed:
                    self.metrics.counter(
                        "runtime_journal_segments_compacted_total",
                        "journal segments deleted by checkpoint compaction",
                    ).inc(removed)

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def resume(
        cls,
        topology: Topology,
        directory: pathlib.Path,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        chaos: Optional[ChaosPlan] = None,
        run_seed: int = 0,
        tap: Optional[PipelineObserver] = None,
        extras_hook: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> "RuntimeService":
        """Rebuild a service from its journal + checkpoints directory.

        Loads the newest loadable checkpoint (if any), replays the
        journal tail through the same code paths the live run used, and
        returns a service ready to ingest new alerts.  Journal corruption
        stops the replay at the last valid record and is surfaced in
        ``service.recovery`` -- recovery proceeds, it does not crash.

        ``extras_hook`` receives the checkpoint's ``extras`` payload (see
        ``checkpoint_extras``) *between* the snapshot restore and the
        journal-tail replay, so a layered service (the gateway) can
        rebuild its own state before the replay drives its ``tap``.

        A chaos run must be resumed with the *same* plan and run seed it
        started with (the caller owns that invariant, exactly as for
        topology and config); planned shard crashes already past replay
        re-fire and re-heal deterministically, which is a no-op on the
        tree by the supervisor's exactness guarantee."""
        service = cls(
            topology,
            config=config,
            state=state,
            directory=directory,
            chaos=chaos,
            run_seed=run_seed,
            tap=tap,
        )
        if service.journal is None or service.checkpoints is None:
            raise RuntimeError("resume requires a persistence directory")

        checkpoint_seq: Optional[int] = None
        after_seq = -1
        found = service.checkpoints.latest()
        if found is not None:
            seq, payload = found
            checkpoint_seq = seq
            restore_pipeline_state(
                service.pipeline, payload["pipeline"]  # type: ignore[arg-type]
            )
            restored_metrics = payload.get("metrics")
            if isinstance(restored_metrics, MetricsRegistry):
                service._rebind_metrics(restored_metrics)
            service.admission.load_state_dict(
                payload["admission"]  # type: ignore[arg-type]
            )
            health_state = payload.get("health")
            if service._health is not None and isinstance(health_state, dict):
                service._health.load_state_dict(health_state)
            chaos_state = payload.get("chaos")
            if isinstance(chaos_state, dict):
                service._fired_crashes = {
                    (float(at), int(shard))
                    for at, shard in chaos_state.get("fired_crashes", [])
                }
                service._fired_correlated = {
                    (float(at), tuple(int(s) for s in shards))
                    for at, shards in chaos_state.get("fired_correlated", [])
                }
            service._seq = int(payload["seq"])  # type: ignore[arg-type]
            service._last_checkpoint_t = float(
                payload.get("sim_now", service.pipeline.now)  # type: ignore[arg-type]
            )
            after_seq = service._seq - 1
            extras = payload.get("extras")
            if extras_hook is not None and isinstance(extras, dict):
                extras_hook(extras)

        replayed = 0
        for entry in service.journal.replay(after_seq=after_seq):
            service._fire_shard_crashes(entry.raw.delivered_at)
            service.admission.replay(entry.raw, entry.admitted, entry.rung)
            if entry.admitted:
                service.pipeline.feed(entry.raw)
            service._seq = entry.seq + 1
            replayed += 1
        service._update_gauges()
        service.recovery = RecoveryReport(
            checkpoint_seq=checkpoint_seq,
            replayed_records=replayed,
            corruptions=tuple(service.journal.corruptions),
        )
        for corruption in service.recovery.corruptions:
            service.metrics.counter(
                "runtime_journal_corruptions_total",
                "journal defects detected during recovery",
            ).inc()
        return service

    def _rebind_metrics(self, metrics: MetricsRegistry) -> None:
        """Swap in a restored registry and re-point every handle holder."""
        self.metrics = metrics
        self.observer = RuntimeObserver(metrics)
        self.pipeline.observer = (
            self.observer
            if self.tap is None
            else _FanoutObserver((self.observer, self.tap))
        )
        self.admission._metrics = metrics
