"""The resumable online service: journal -> admission -> pipeline.

:class:`RuntimeService` hosts the preprocessor -> (sharded) locator ->
evaluator pipeline as a long-lived stream consumer:

* every offered raw alert is **journaled first** (write-ahead, with its
  admission decision), then run through the admission controller and --
  if admitted -- the pipeline;
* on the configured sim-time cadence the whole mutable pipeline state is
  **checkpointed** (see ``checkpoint.py``);
* after a crash, :meth:`RuntimeService.resume` loads the newest loadable
  checkpoint and replays the journal tail, reproducing the exact state
  -- incident ids included -- the uninterrupted run would have reached
  (``tests/runtime/test_kill_resume.py`` pins this);
* a :class:`MetricsRegistry` threads through every stage via the
  pipeline's observer hook; all its latency quantities are simulated
  time (REP004: no wall clocks in the core).
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import PRODUCTION_CONFIG, SkyNetConfig
from ..core.locator import SweepResult
from ..core.pipeline import IncidentReport, PipelineObserver, SkyNet
from ..monitors.base import RawAlert
from ..simulation.state import NetworkState
from ..topology.network import Topology
from .admission import AdmissionController
from .checkpoint import (
    CheckpointStore,
    pipeline_state_dict,
    restore_pipeline_state,
)
from .journal import AlertJournal, JournalCorruption
from .metrics import MetricsRegistry, registry_or_new
from .sharding import ShardedLocator

JOURNAL_SUBDIR = "journal"
CHECKPOINT_SUBDIR = "checkpoints"


@dataclasses.dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`RuntimeService.resume` reconstructed."""

    checkpoint_seq: Optional[int]  # None = no checkpoint, full journal replay
    replayed_records: int
    corruptions: Tuple[JournalCorruption, ...]

    def render(self) -> str:
        base = (
            f"resumed from checkpoint seq={self.checkpoint_seq}"
            if self.checkpoint_seq is not None
            else "no checkpoint found; replaying full journal"
        )
        lines = [f"{base}; replayed {self.replayed_records} journal record(s)"]
        lines.extend(c.render() for c in self.corruptions)
        return "\n".join(lines)


class RuntimeObserver(PipelineObserver):
    """Feeds the metrics registry from the pipeline's observer hooks."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._raws = metrics.counter(
            "runtime_raw_alerts_total", "raw alerts fed to the pipeline"
        )
        self._structured = metrics.counter(
            "runtime_structured_alerts_total",
            "structured alerts emitted by the preprocessor",
        )
        self._sweeps = metrics.counter(
            "runtime_sweeps_total", "locator sweeps executed"
        )
        self._opened = metrics.counter(
            "runtime_incidents_opened_total", "incident trees generated"
        )
        self._closed = metrics.counter(
            "runtime_incidents_closed_total", "incident trees closed"
        )
        self._expired = metrics.counter(
            "runtime_records_expired_total", "main-tree records expired"
        )
        self._delivery_lag = metrics.histogram(
            "runtime_delivery_lag_seconds",
            "simulated lag between observation and collector delivery",
        )
        self._detection = metrics.histogram(
            "runtime_detection_latency_seconds",
            "simulated time from an incident's first alert to its opening sweep",
        )
        self._duration = metrics.histogram(
            "runtime_incident_duration_seconds",
            "simulated incident lifetime at close",
        )

    def on_raw(self, raw: RawAlert, emitted: List) -> None:
        self._raws.inc()
        self._structured.inc(len(emitted))
        self._delivery_lag.observe(raw.delivered_at - raw.timestamp)

    def on_sweep(self, now: float, result: SweepResult) -> None:
        self._sweeps.inc()
        self._opened.inc(len(result.opened))
        self._closed.inc(len(result.closed))
        self._expired.inc(result.expired_records)
        for incident in result.opened:
            self._detection.observe(max(0.0, now - incident.start_time))
        for incident in result.closed:
            self._duration.observe(
                max(0.0, incident.end_time - incident.start_time)
            )


class RuntimeService:
    """Sharded, checkpointable, backpressured hosting of the pipeline."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        directory: Optional[pathlib.Path] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or PRODUCTION_CONFIG
        params = self.config.runtime
        self.metrics = registry_or_new(metrics)
        self.admission = AdmissionController(params, metrics=self.metrics)
        self.observer = RuntimeObserver(self.metrics)
        self.pipeline = SkyNet(
            topology,
            config=self.config,
            state=state,
            locator=ShardedLocator(topology, self.config),
            observer=self.observer,
        )
        self.directory = pathlib.Path(directory) if directory is not None else None
        self.journal: Optional[AlertJournal] = None
        self.checkpoints: Optional[CheckpointStore] = None
        if self.directory is not None:
            self.journal = AlertJournal(
                self.directory / JOURNAL_SUBDIR, params.journal_segment_records
            )
            self.checkpoints = CheckpointStore(self.directory / CHECKPOINT_SUBDIR)
        self.recovery: Optional[RecoveryReport] = None
        self._seq = 0
        self._last_checkpoint_t = float("-inf")

    # -- ingest ------------------------------------------------------------

    @property
    def shards(self) -> int:
        locator = self.pipeline.locator
        return locator.shards if isinstance(locator, ShardedLocator) else 1

    def ingest(self, raw: RawAlert) -> List:
        """Offer one raw alert: journal, admission, pipeline, checkpoint."""
        decision = self.admission.offer(raw)
        if self.journal is not None:
            self.journal.append(
                raw, self._seq, admitted=decision.admit, rung=decision.rung
            )
        self._seq += 1
        if not decision.admit:
            return []
        emitted = self.pipeline.feed(raw)
        self._maybe_checkpoint(raw.delivered_at)
        self._update_gauges()
        return emitted

    def run(self, raws: Iterable[RawAlert]) -> "RuntimeService":
        for raw in raws:
            self.ingest(raw)
        return self

    def finish(self) -> None:
        """Close out the stream; final state is checkpointed if persisting."""
        self.pipeline.finish()
        self._update_gauges()
        if self.checkpoints is not None:
            self.checkpoint()

    # -- results -----------------------------------------------------------

    def reports(self) -> List[IncidentReport]:
        return self.pipeline.reports()

    def shed_counts(self) -> Dict[str, int]:
        return dict(self.admission.sheds)

    def _update_gauges(self) -> None:
        self.metrics.gauge(
            "runtime_open_incidents", "incident trees currently open"
        ).set(len(self.pipeline.locator.open_incidents))
        self.metrics.gauge(
            "runtime_live_locations", "alerting locations in the main tree"
        ).set(len(self.pipeline.locator.main_tree))
        self.metrics.gauge(
            "runtime_sim_time_seconds", "alert time the pipeline has reached"
        ).set(max(self.pipeline.now, 0.0))

    # -- checkpointing -----------------------------------------------------

    def _maybe_checkpoint(self, now: float) -> None:
        interval = self.config.runtime.checkpoint_interval_s
        if self.checkpoints is None or interval <= 0:
            return
        if now - self._last_checkpoint_t >= interval:
            self.checkpoint(now)

    def checkpoint(self, now: Optional[float] = None) -> None:
        """Snapshot everything needed to resume at the current seq."""
        if self.checkpoints is None:
            raise RuntimeError("service has no persistence directory")
        if self.journal is not None:
            self.journal.sync()
        state: Dict[str, object] = {
            "seq": self._seq,
            "sim_now": self.pipeline.now,
            "pipeline": pipeline_state_dict(self.pipeline),
            "admission": self.admission.state_dict(),
            "metrics": self.metrics,
        }
        self.checkpoints.save(self._seq, state)
        self._last_checkpoint_t = (
            now if now is not None else self.pipeline.now
        )
        self.metrics.counter(
            "runtime_checkpoints_total", "snapshot checkpoints written"
        ).inc()

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def resume(
        cls,
        topology: Topology,
        directory: pathlib.Path,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
    ) -> "RuntimeService":
        """Rebuild a service from its journal + checkpoints directory.

        Loads the newest loadable checkpoint (if any), replays the
        journal tail through the same code paths the live run used, and
        returns a service ready to ingest new alerts.  Journal corruption
        stops the replay at the last valid record and is surfaced in
        ``service.recovery`` -- recovery proceeds, it does not crash."""
        service = cls(topology, config=config, state=state, directory=directory)
        if service.journal is None or service.checkpoints is None:
            raise RuntimeError("resume requires a persistence directory")

        checkpoint_seq: Optional[int] = None
        after_seq = -1
        found = service.checkpoints.latest()
        if found is not None:
            seq, payload = found
            checkpoint_seq = seq
            restore_pipeline_state(
                service.pipeline, payload["pipeline"]  # type: ignore[arg-type]
            )
            restored_metrics = payload.get("metrics")
            if isinstance(restored_metrics, MetricsRegistry):
                service._rebind_metrics(restored_metrics)
            service.admission.load_state_dict(
                payload["admission"]  # type: ignore[arg-type]
            )
            service._seq = int(payload["seq"])  # type: ignore[arg-type]
            service._last_checkpoint_t = float(
                payload.get("sim_now", service.pipeline.now)  # type: ignore[arg-type]
            )
            after_seq = service._seq - 1

        replayed = 0
        for entry in service.journal.replay(after_seq=after_seq):
            service.admission.replay(entry.raw, entry.admitted, entry.rung)
            if entry.admitted:
                service.pipeline.feed(entry.raw)
            service._seq = entry.seq + 1
            replayed += 1
        service._update_gauges()
        service.recovery = RecoveryReport(
            checkpoint_seq=checkpoint_seq,
            replayed_records=replayed,
            corruptions=tuple(service.journal.corruptions),
        )
        for corruption in service.recovery.corruptions:
            service.metrics.counter(
                "runtime_journal_corruptions_total",
                "journal defects detected during recovery",
            ).inc()
        return service

    def _rebind_metrics(self, metrics: MetricsRegistry) -> None:
        """Swap in a restored registry and re-point every handle holder."""
        self.metrics = metrics
        self.observer = RuntimeObserver(metrics)
        self.pipeline.observer = self.observer
        self.admission._metrics = metrics
