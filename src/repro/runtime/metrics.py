"""Sim-clock metrics for the runtime service (counters, gauges, histograms).

The registry is deliberately clock-free: nothing here ever reads a wall
clock (REP004 bans those outside the simulation package), so every
"latency" is a *simulated-time* quantity -- delivery lag between a
monitor's observation and its collection, detection latency between the
first record of an incident and the sweep that opened it, incident
duration.  Gauges that want a timestamp take it from the caller, who owns
alert time.

Rendering mirrors the two shapes operators consume: a flat
``prometheus``-flavoured text exposition (``render_text``) and a nested
JSON document (``as_dict``), both stable-ordered so diffs are readable.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds of simulated time);
#: spans monitor delivery jitter (~seconds) up to incident lifetimes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 240.0, 600.0, 1800.0, 3600.0,
)


class Counter:
    """Monotonic event count."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-observed value (open incidents, live tree nodes, sim time)."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution of a simulated-time quantity."""

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)  # +inf tail
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric store threaded through the runtime's pipeline stages.

    ``counter``/``gauge``/``histogram`` are get-or-create, so stages can
    grab handles lazily without coordinating registration order.  The
    whole registry is plain picklable state and rides along in runtime
    checkpoints, which keeps counts exact across a kill-and-resume.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name, help_text)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name, help_text)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, help_text, buckets)
        return metric

    def counter_value(self, name: str) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    # -- rendering ---------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": round(metric.total, 6),
                    "mean": round(metric.mean, 6),
                    "buckets": {
                        _bound_label(bound): count
                        for bound, count in zip(
                            list(metric.bounds) + [float("inf")],
                            metric.bucket_counts,
                        )
                    },
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def render_text(self) -> str:
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            if counter.help_text:
                lines.append(f"# HELP {name} {counter.help_text}")
            lines.append(f"{name} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            if gauge.help_text:
                lines.append(f"# HELP {name} {gauge.help_text}")
            lines.append(f"{name} {gauge.value:g}")
        for name, hist in sorted(self._histograms.items()):
            if hist.help_text:
                lines.append(f"# HELP {name} {hist.help_text}")
            cumulative = 0
            for bound, count in zip(
                list(hist.bounds) + [float("inf")], hist.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_bound_label(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_count {hist.count}")
            lines.append(f"{name}_sum {hist.total:g}")
        return "\n".join(lines)


def _bound_label(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


def registry_or_new(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    return registry if registry is not None else MetricsRegistry()
