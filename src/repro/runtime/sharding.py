"""Location-sharded locating: N independent alert-tree shards, one answer.

The ROADMAP names "sharding the alert tree across locations" as the next
scaling lever after the PR-2 fast path: under a severe flood the locator's
per-sweep grouping cost is superlinear in the number of alerting
locations, so partitioning the main tree by Region subtree divides that
cost by the shard count.

Naive region sharding is **not** output-equivalent, and this module does
not pretend it is.  The backbone connects DCBRs across regions, so the
reference grouping routinely produces cross-region (even ``<root>``-
rooted) incidents; a partition that never looked across shards would
miss them.  Instead the sharded locator computes each shard's partition
independently -- with exactly the reference (or fast-path) rules -- and
then runs an **exact cross-shard merge** over the only two edge classes
that can span shards:

* **frontier devices** -- a grouping edge between locations in different
  Region subtrees is necessarily a device-to-device hop edge (structural
  containment and device-structure glue never cross region boundaries
  below the root), and a device with a neighbour in another region within
  ``connectivity_max_hops`` is, by definition, in the precomputed
  frontier set.  Scanning alerting frontier-device pairs across shards
  recovers every such edge;
* **the root shard** -- a root-located alert's node contains every other
  location, so any live root node merges all components, exactly as the
  reference pairwise containment scan would.

Everything else about incident generation (thresholds, supersession,
snapshots, counting) is inherited unchanged from :class:`Locator` by
swapping the main tree for a :class:`ShardedAlertTree`, so shard-count
invariance reduces to the partition argument above --
``tests/runtime/test_shard_invariance.py`` pins it byte-for-byte against
the unsharded reference across the flood scenario battery.
"""

from __future__ import annotations

import zlib
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..core.alert import StructuredAlert
from ..core.alert_tree import AlertTree, TreeRecord
from ..core.config import SkyNetConfig
from ..core.locator import CandidateGroup, Locator, _lca
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology

#: Shard index of the tree holding root-located alerts (no Region prefix).
ROOT_SHARD = -1


class ShardRouter:
    """Deterministic Region-subtree -> shard assignment.

    Known regions are assigned round-robin over their sorted names rather
    than hashed: the benchmark fabric has three regions, and hashing three
    labels onto four shards risks a collision that halves the effective
    parallelism.  Unknown top-level segments (a region added after the
    router was built) fall back to a stable crc32 hash.  Root-located
    paths route to the dedicated :data:`ROOT_SHARD`.
    """

    def __init__(self, topology: Topology, shards: int) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = int(shards)
        regions = sorted(
            {
                device.location.segments[0]
                for device in topology.devices.values()
                if device.location.segments
            }
        )
        self.assignment: Dict[str, int] = {
            name: i % self.shards for i, name in enumerate(regions)
        }

    def shard_of(self, location: LocationPath) -> int:
        segments = location.segments
        if not segments:
            return ROOT_SHARD
        index = self.assignment.get(segments[0])
        if index is None:
            # surrogatepass: a corrupt region name (unpaired surrogate
            # from a garbled upstream) must still route, not crash
            digest = segments[0].encode("utf-8", "surrogatepass")
            index = zlib.crc32(digest) % self.shards
        return index


class ShardedAlertTree:
    """The :class:`AlertTree` interface over per-region shard trees.

    Presents the same queries and mutations as a single main tree while
    storing records in ``router.shards`` shard trees plus a root tree.
    A global insertion-ordered location index keeps :meth:`locations` and
    :meth:`snapshot_under` iterating in exactly the order one unsharded
    tree would, so downstream consumers cannot observe the sharding.
    """

    def __init__(self, router: ShardRouter, fast: bool = False) -> None:
        self.router = router
        self.shard_trees: List[AlertTree] = [
            AlertTree(fast=fast) for _ in range(router.shards)
        ]
        self.root_tree = AlertTree(fast=fast)
        #: location -> shard index, in global first-insertion order
        self._order: Dict[LocationPath, int] = {}

    # -- routing -----------------------------------------------------------

    def tree_for(self, location: LocationPath) -> AlertTree:
        index = self.router.shard_of(location)
        return self.root_tree if index == ROOT_SHARD else self.shard_trees[index]

    def trees(self) -> Iterator[Tuple[int, AlertTree]]:
        """All shard trees plus the root tree, stable order."""
        for index, tree in enumerate(self.shard_trees):
            yield index, tree
        yield ROOT_SHARD, self.root_tree

    # -- AlertTree interface: mutation -------------------------------------

    def insert(self, alert: StructuredAlert) -> TreeRecord:
        index = self.router.shard_of(alert.location)
        tree = self.root_tree if index == ROOT_SHARD else self.shard_trees[index]
        record = tree.insert(alert)
        # Insertion-order map spans all shards by design: report order must
        # match the unsharded tree byte-for-byte.  The multiprocess port
        # needs a merge step here (ROADMAP).
        self._order.setdefault(alert.location, index)  # lint: allow REP014
        return record

    def insert_batch(self, alerts: List[StructuredAlert]) -> int:
        buckets: Dict[int, List[StructuredAlert]] = {}
        for alert in alerts:
            index = self.router.shard_of(alert.location)
            # Same cross-shard order map as insert().
            self._order.setdefault(alert.location, index)  # lint: allow REP014
            buckets.setdefault(index, []).append(alert)
        count = 0
        for index, batch in buckets.items():
            tree = (
                self.root_tree if index == ROOT_SHARD else self.shard_trees[index]
            )
            count += tree.insert_batch(batch)
        return count

    def expire(self, now: float, timeout_s: float) -> int:
        removed = 0
        structure_changed = False
        for _, tree in self.trees():
            before = tree.structure_version
            removed += tree.expire(now, timeout_s)
            if tree.structure_version != before:
                structure_changed = True
        if structure_changed:
            for location in list(self._order):
                index = self._order[location]
                tree = (
                    self.root_tree
                    if index == ROOT_SHARD
                    else self.shard_trees[index]
                )
                if location not in tree:
                    # Cross-shard order map upkeep.
                    del self._order[location]  # lint: allow REP014
        return removed

    # -- AlertTree interface: queries --------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, location: LocationPath) -> bool:
        return location in self._order

    @property
    def structure_version(self) -> int:
        return self.root_tree.structure_version + sum(
            tree.structure_version for tree in self.shard_trees
        )

    def consume_dirty(self) -> Set[LocationPath]:
        dirty: Set[LocationPath] = set()
        for _, tree in self.trees():
            dirty |= tree.consume_dirty()
        return dirty

    def locations(self) -> List[LocationPath]:
        return list(self._order)

    def records_at(self, location: LocationPath) -> List[TreeRecord]:
        return self.tree_for(location).records_at(location)

    def iter_records_at(self, location: LocationPath) -> Iterator[TreeRecord]:
        return self.tree_for(location).iter_records_at(location)

    def records_under(self, root: LocationPath) -> Iterator[TreeRecord]:
        for location in self._order:
            if root.contains(location):
                yield from self.tree_for(location).iter_records_at(location)

    def locations_under(self, root: LocationPath) -> List[LocationPath]:
        return [loc for loc in self._order if root.contains(loc)]

    def total_records(self) -> int:
        return sum(tree.total_records() for _, tree in self.trees())

    def snapshot_under(
        self, root: LocationPath
    ) -> Dict[LocationPath, List[TreeRecord]]:
        out: Dict[LocationPath, List[TreeRecord]] = {}
        for location in self._order:
            if root.contains(location):
                out[location] = [
                    record.clone()
                    for record in self.tree_for(location).iter_records_at(location)
                ]
        return out


def partition_locations(
    engine: Locator, locations: List[LocationPath]
) -> List[List[LocationPath]]:
    """One shard's partition with the engine's configured rules.

    The single entry point both backends share: the in-process sharded
    locator calls it per shard tree, and each ``repro.runtime.workers``
    worker process calls it over its own tree, so the per-shard
    components are computed by the same pure function either way.
    """
    if engine.config.fast_path:
        return engine._indexed_partition(locations)
    return engine._component_partition(locations)


def merge_shard_partitions(
    topology: Topology,
    max_hops: int,
    frontier: FrozenSet[str],
    shard_parts: List[Tuple[int, List[List[LocationPath]]]],
) -> List[CandidateGroup]:
    """Exact cross-shard merge of per-shard partitions (module docstring).

    ``shard_parts`` must enumerate shards in the canonical tree order --
    worker shards ``0..N-1`` then :data:`ROOT_SHARD` -- with each shard's
    components in its own partition order; the merged output (including
    the stable widest-first tie-break) is then identical no matter where
    the per-shard partitions were computed.
    """
    components: List[List[LocationPath]] = []
    frontier_hits: List[Tuple[int, str, int]] = []  # (shard, device, comp)
    root_components: List[int] = []

    for index, parts in shard_parts:
        for component in parts:
            comp_id = len(components)
            components.append(component)
            if index == ROOT_SHARD:
                root_components.append(comp_id)
                continue
            for location in component:
                if location.is_device and location.name in frontier:
                    frontier_hits.append((index, location.name, comp_id))

    if not components:
        return []

    parent = list(range(len(components)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    # cross-shard device edges: alerting frontier pairs within max_hops
    for i, (shard_a, name_a, comp_a) in enumerate(frontier_hits):
        hood = topology.hop_neighbourhood(name_a, max_hops)
        for shard_b, name_b, comp_b in frontier_hits[i + 1 :]:
            if shard_a != shard_b and name_b in hood:
                union(comp_a, comp_b)

    # a live root-located node contains -- and therefore joins -- all
    if root_components:
        anchor = root_components[0]
        for other in range(len(components)):
            union(anchor, other)

    merged: Dict[int, List[LocationPath]] = {}
    for comp_id, component in enumerate(components):
        merged.setdefault(find(comp_id), []).extend(component)
    out = [(_lca(component), component) for component in merged.values()]
    # widest groups first so a broad incident supersedes narrow ones
    out.sort(key=lambda pair: len(pair[0].segments))
    return out


def frontier_devices(topology: Topology, max_hops: int) -> FrozenSet[str]:
    """Devices with a neighbour in another Region within ``max_hops``.

    Every cross-region device-to-device grouping edge has both endpoints
    in this set (the edge relation *is* "graph distance <= max_hops"), so
    the cross-shard merge only ever needs to look at alerting frontier
    devices.  On hierarchical fabrics this is a thin layer -- backbone
    and border routers -- independent of flood size.
    """
    frontier: Set[str] = set()
    for name, device in topology.devices.items():
        segments = device.location.segments
        if not segments:
            frontier.add(name)
            continue
        region = segments[0]
        for neighbour in topology.hop_neighbourhood(name, max_hops):
            other = topology.devices.get(neighbour)
            if other is None or not other.location.segments:
                continue
            if other.location.segments[0] != region:
                frontier.add(name)
                break
    return frozenset(frontier)


class ShardedLocator(Locator):
    """§4.2 locating over N region shards with an exact cross-shard merge.

    Inherits every algorithm from :class:`Locator` -- feeds, sweeps,
    thresholds, supersession -- and overrides only the candidate-group
    computation: each shard tree is partitioned independently (with the
    reference or fast-path rules, memoised per shard on its structure
    version), then components are unioned across shards along alerting
    frontier-device edges and through any live root-shard node.  See the
    module docstring for why that merge is exact.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        shards: Optional[int] = None,
    ) -> None:
        super().__init__(topology, config)
        count = shards if shards is not None else self._config.runtime.shards
        self.router = ShardRouter(topology, count)
        self.main_tree = ShardedAlertTree(self.router, fast=self._fast)  # type: ignore[assignment]
        self._frontier = frontier_devices(
            topology, self._config.connectivity_max_hops
        )
        #: per-shard partition memo: shard index -> (version, components)
        self._partitions: Dict[int, Tuple[int, List[List[LocationPath]]]] = {}

    @property
    def shards(self) -> int:
        return self.router.shards

    def _candidate_groups(self) -> List[CandidateGroup]:
        tree: ShardedAlertTree = self.main_tree  # type: ignore[assignment]
        shard_parts: List[Tuple[int, List[List[LocationPath]]]] = []
        for index, shard_tree in tree.trees():
            version = shard_tree.structure_version
            cached = self._partitions.get(index)
            if cached is None or cached[0] != version:
                cached = (
                    version,
                    partition_locations(self, shard_tree.locations()),
                )
                self._partitions[index] = cached
            shard_parts.append((index, cached[1]))
        return merge_shard_partitions(
            self._topo,
            self._config.connectivity_max_hops,
            self._frontier,
            shard_parts,
        )

    def restore_tree(self, tree: AlertTree) -> None:
        super().restore_tree(tree)
        self._partitions = {}
