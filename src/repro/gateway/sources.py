"""Source registry: the gateway's per-monitor ingestion contract.

Each Table-2 monitor (plus the two §7 future sources) connects to the
gateway as a named *source*.  The registry owns the per-source contract
the deterministic sequencer depends on:

* **identity** -- only canonical monitor names are accepted;
* **priority** -- a fixed total order over sources (Table-2 registry
  order, future sources last) used as the tie-break when two sources
  submit alerts with the same timestamp;
* **sequence numbers** -- every accepted submission gets a per-source
  monotone sequence number; a client may supply its own (for exactly-once
  resubmission after reconnect) but it must be strictly increasing;
* **timestamps** -- per-source submission timestamps must be
  non-decreasing, which is what makes the sequencer's watermarks safe;
* **accounting** -- submitted/shed counts and end-of-stream state per
  source, surfaced by the gateway's ``health`` query and carried through
  checkpoints so a resumed gateway enforces the same contract.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..monitors.registry import DATA_SOURCES, FUTURE_SOURCES

#: Every source the gateway will accept, in priority order: the twelve
#: Table-2 monitors in registry order, then the §7 future sources.
CANONICAL_SOURCES: Tuple[str, ...] = tuple(DATA_SOURCES) + tuple(FUTURE_SOURCES)

#: Tie-break rank per source: lower rank wins at equal timestamps.
SOURCE_PRIORITY: Dict[str, int] = {
    tool: rank for rank, tool in enumerate(CANONICAL_SOURCES)
}


class GatewayError(ValueError):
    """Base class for gateway ingestion-contract violations."""


class UnknownSourceError(GatewayError):
    """The named source is not a canonical monitor."""


class SourceClosedError(GatewayError):
    """The source already declared end-of-stream."""


class SequenceError(GatewayError):
    """A submission violated per-source seq or timestamp monotonicity."""


@dataclasses.dataclass
class SourceRecord:
    """Mutable per-source bookkeeping (one row of the registry)."""

    name: str
    priority: int
    next_seq: int = 0
    last_timestamp: Optional[float] = None
    submitted: int = 0
    shed: int = 0
    eof: bool = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "next_seq": self.next_seq,
            "last_timestamp": self.last_timestamp,
            "submitted": self.submitted,
            "shed": self.shed,
            "eof": self.eof,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.next_seq = int(state["next_seq"])  # type: ignore[arg-type]
        last = state["last_timestamp"]
        self.last_timestamp = None if last is None else float(last)  # type: ignore[arg-type]
        self.submitted = int(state["submitted"])  # type: ignore[arg-type]
        self.shed = int(state["shed"])  # type: ignore[arg-type]
        self.eof = bool(state["eof"])


class SourceRegistry:
    """Validates and accounts every submission before it is sequenced.

    :meth:`assign` is the single validation point: it raises *before*
    mutating any state, so a rejected submission leaves the registry (and
    therefore the sequencer, which is only fed validated input) exactly
    as it was.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, SourceRecord] = {
            name: SourceRecord(name=name, priority=SOURCE_PRIORITY[name])
            for name in CANONICAL_SOURCES
        }

    # -- contract ----------------------------------------------------------

    def record(self, source: str) -> SourceRecord:
        try:
            return self._sources[source]
        except KeyError:
            raise UnknownSourceError(
                f"unknown source {source!r}; expected one of the "
                f"{len(CANONICAL_SOURCES)} canonical monitors"
            ) from None

    def assign(
        self, source: str, timestamp: float, seq: Optional[int] = None
    ) -> int:
        """Validate one submission and return its per-source seq number.

        Raises before mutating on: unknown source, source past eof,
        client-supplied ``seq`` not >= the next expected, or ``timestamp``
        regressing below the source's last accepted timestamp.
        """
        record = self.record(source)
        if record.eof:
            raise SourceClosedError(f"source {source!r} already sent eof")
        if seq is not None and seq < record.next_seq:
            raise SequenceError(
                f"source {source!r} seq {seq} replays or reorders; "
                f"next expected is {record.next_seq}"
            )
        if record.last_timestamp is not None and timestamp < record.last_timestamp:
            raise SequenceError(
                f"source {source!r} timestamp {timestamp} regresses below "
                f"{record.last_timestamp}; per-source timestamps must be "
                "non-decreasing"
            )
        assigned = record.next_seq if seq is None else seq
        record.next_seq = assigned + 1
        record.last_timestamp = timestamp
        record.submitted += 1
        return assigned

    def mark_shed(self, source: str) -> None:
        self.record(source).shed += 1

    def mark_eof(self, source: str) -> None:
        record = self.record(source)
        if record.eof:
            raise SourceClosedError(f"source {source!r} already sent eof")
        record.eof = True

    def all_eof(self) -> bool:
        return all(record.eof for record in self._sources.values())

    def snapshot(self) -> Dict[str, SourceRecord]:
        """Read-only view for the health endpoint (do not mutate rows)."""
        return dict(self._sources)

    # -- checkpoint plumbing -----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            name: record.state_dict() for name, record in self._sources.items()
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        for name, record_state in state.items():
            self.record(name).load_state_dict(record_state)  # type: ignore[arg-type]
