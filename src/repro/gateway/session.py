"""Client-side ingest session: the exactly-once half the server can't own.

Server-side dedupe keys on the per-source monotone seq a submission
carries, so exactly-once ingest over a lossy wire needs the *client* to
(1) assign every submission an explicit seq and (2) survive its own
restarts by re-learning where each source stands.
:class:`GatewayIngestSession` owns both:

* per-source counters assign the next seq to each ``submit``; a shed
  submission does **not** advance the counter (the server never consumed
  the seq), and a duplicate ack advances it by exactly one -- so a
  restarted producer that replays its substream *from the beginning*
  stays position-aligned with its seqs: the already-consumed prefix
  drains as counted duplicate acks, and fresh alerts resume exactly at
  the server's frontier;
* :meth:`resync` re-learns each source's consumed frontier from the
  gateway's ``health`` reply -- the session-resume handshake that lets a
  deterministic producer *skip* the consumed prefix of each substream
  instead of re-sending it (see ``python -m repro.gateway ingest``).

The session is carrier-agnostic: anything with a
``request(message) -> reply`` method works, so the loopback battery and
the chaos-wrapped socket client drive the identical code path.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..monitors.base import RawAlert
from ..runtime.journal import raw_to_json
from .sources import GatewayError
from .transport import Message


class _Transport(Protocol):
    def request(self, message: Message) -> Message: ...


class GatewayIngestSession:
    """Per-source seq assignment + resume-from-health over any transport."""

    def __init__(self, transport: _Transport) -> None:
        self._transport = transport
        self._next_seq: Dict[str, int] = {}
        #: accounting for tests and the CLI's closing summary.
        self.submitted = 0
        self.duplicates = 0
        self.sheds = 0

    def next_seq(self, source: str) -> int:
        return self._next_seq.get(source, 0)

    def resync(self) -> Dict[str, int]:
        """Re-learn per-source next seqs from the gateway (session resume)."""
        reply = self._transport.request({"op": "health"})
        if not reply.get("ok"):
            raise GatewayError(f"health query failed: {reply.get('error')}")
        sources = reply.get("sources")
        if not isinstance(sources, dict):
            raise GatewayError("malformed health reply: no sources map")
        self._next_seq = {
            str(name): int(info["next_seq"])  # type: ignore[index, call-overload, arg-type]
            for name, info in sources.items()
        }
        return dict(self._next_seq)

    def submit(self, raw: RawAlert, source: Optional[str] = None) -> Message:
        """Submit one alert with an explicit seq; replay-safe end to end."""
        name = raw.tool if source is None else source
        seq = self._next_seq.get(name, 0)
        message: Message = {"op": "submit", "raw": raw_to_json(raw), "seq": seq}
        if source is not None:
            message["source"] = source
        reply = self._transport.request(message)
        if reply.get("ok") and reply.get("admitted"):
            if reply.get("duplicate"):
                # an earlier incarnation of this stream (or a retried
                # frame) already delivered this seq; advance by exactly
                # one so substream position stays aligned with seq
                self.duplicates += 1
            else:
                self.submitted += 1
            self._next_seq[name] = seq + 1
        elif reply.get("ok"):
            # shed at the queue: the seq was never consumed server-side,
            # so the next submission re-offers it
            self.sheds += 1
        return reply

    def advance(self, source: str, timestamp: float) -> Message:
        return self._transport.request(
            {"op": "advance", "source": source, "timestamp": timestamp}
        )

    def eof(self, source: str) -> Message:
        return self._transport.request({"op": "eof", "source": source})

    def finish(self) -> Message:
        return self._transport.request({"op": "finish"})
