"""Network chaos: seeded fault injection at the gateway's wire boundary.

The runtime's :class:`~repro.runtime.faults.ChaosPlan` stops at the
process edge -- it can silence monitors, crash shards and fail disks,
but a served deployment also fails *between* processes.  This module
extends the same discipline (declarative plan, namespaced seeded RNGs,
empty plan provably inert) across the socket:

* **connection resets** -- the connection dies before the request frame
  is written (nothing reached the server);
* **torn frames** -- a prefix of the frame is written, then the
  connection dies (the server sees a half line it must refuse cleanly);
* **stalled reads** -- the request never goes out and the client's
  patience expires (modelled as an immediate injected timeout: the
  observable contract -- "timed out, nothing applied" -- is identical
  and the battery stays fast);
* **duplicated deliveries** -- the frame arrives twice; the server must
  dedupe, the client must swallow the extra ack;
* **reordered deliveries** -- a *stale* copy of an earlier frame lands
  again before the current one (the request/reply protocol is lockstep,
  so out-of-order manifests exactly as replayed old frames -- which is
  what exercises the per-source seq dedupe);
* **dropped replies** -- the frame is fully delivered but the reply is
  lost: the one genuinely ambiguous failure (``maybe_applied=True``),
  resolvable only because replay-safe requests can be resent into the
  server-side dedupe.

:class:`ChaosTransport` sits on :class:`~repro.gateway.transport.GatewayClient`'s
wire seam and perturbs each request/reply exchange by drawing from the
plan's RNG in a fixed order, so a given (plan, seed) perturbs a given
request sequence identically on every run.  An empty plan draws
nothing and passes bytes through untouched -- and
:func:`net_chaos_or_none` normalises it to ``None`` so the client does
not even construct the wrapper.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, Optional, Tuple

from .transport import GatewayTransportError

#: Fault kinds in fixed draw order (one RNG draw each per exchange, so
#: the perturbation is a pure function of the plan, seeds and exchange
#: index -- later faults' draws are burned even when an earlier fault
#: fires, keeping the sequence alignment independent of outcomes).
FAULT_KINDS: Tuple[str, ...] = (
    "reset",
    "stall",
    "torn",
    "stale",
    "duplicate",
    "drop_reply",
)


class ChaosInjectedNetworkError(GatewayTransportError):
    """A transport failure manufactured by :class:`ChaosTransport`."""


@dataclasses.dataclass(frozen=True)
class NetChaosPlan:
    """Per-exchange fault probabilities for the gateway wire.

    Each rate is the probability that the corresponding fault fires on
    one request/reply exchange.  Rates compose: a single exchange may
    draw a duplicate *and* a dropped reply.  ``seed`` namespaces the
    RNG exactly like :meth:`ChaosPlan.rng
    <repro.runtime.faults.ChaosPlan.rng>` so a net plan and a runtime
    plan over the same run seed stay independent.
    """

    reset_rate: float = 0.0
    torn_rate: float = 0.0
    stall_rate: float = 0.0
    duplicate_rate: float = 0.0
    stale_rate: float = 0.0
    drop_reply_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")

    def is_empty(self) -> bool:
        return all(getattr(self, f"{kind}_rate") == 0.0 for kind in FAULT_KINDS)

    def rng(self, purpose: str, run_seed: int) -> random.Random:
        """A deterministic RNG namespaced by purpose, plan seed, run seed."""
        return random.Random(f"netchaos:{purpose}:{self.seed}:{run_seed}")


def empty_net_plan() -> NetChaosPlan:
    """The inert plan: no wire faults, every chaos path skipped."""
    return NetChaosPlan()


def net_chaos_or_none(plan: Optional[NetChaosPlan]) -> Optional[NetChaosPlan]:
    """Normalise: an empty plan is the same as no plan at all."""
    if plan is None or plan.is_empty():
        return None
    return plan


class ChaosTransport:
    """Perturbs a client's wire exchanges per a :class:`NetChaosPlan`.

    ``exchange`` is handed the client's raw send/recv primitives plus the
    encoded frame and its replay-safety bit; it either completes the
    exchange (possibly with injected duplicate/stale traffic whose extra
    acks it swallows) or raises :class:`ChaosInjectedNetworkError` with
    an honest ``maybe_applied``, which the client's reconnect-and-retry
    machinery then handles exactly like a real network failure.
    """

    def __init__(self, plan: NetChaosPlan, run_seed: int = 0) -> None:
        self._plan = plan
        self._rng: Optional[random.Random] = (
            None if plan.is_empty() else plan.rng("wire", run_seed)
        )
        #: stale-replay candidate: the last replay-safe frame delivered.
        self._held: Optional[bytes] = None
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.exchanges = 0

    def injected(self) -> int:
        """Total faults fired so far (the battery asserts this is > 0)."""
        return sum(self.counts.values())

    def exchange(
        self,
        send: Callable[[bytes], None],
        recv: Callable[[], bytes],
        frame: bytes,
        safe: bool,
    ) -> bytes:
        self.exchanges += 1
        if self._rng is None:
            # empty plan: zero draws, byte-for-byte passthrough
            send(frame)
            return recv()
        plan = self._plan
        draws = {kind: self._rng.random() for kind in FAULT_KINDS}
        if draws["reset"] < plan.reset_rate:
            self.counts["reset"] += 1
            raise ChaosInjectedNetworkError(
                "injected connection reset before send", maybe_applied=False
            )
        if draws["stall"] < plan.stall_rate:
            self.counts["stall"] += 1
            raise ChaosInjectedNetworkError(
                "injected stalled read; request never sent",
                maybe_applied=False,
            )
        if draws["torn"] < plan.torn_rate and len(frame) > 1:
            # cut strictly inside the frame so the newline never goes
            # out: the server must see an unterminated half line
            cut = 1 + int(self._rng.random() * (len(frame) - 2))
            self.counts["torn"] += 1
            send(frame[:cut])
            raise ChaosInjectedNetworkError(
                f"injected torn frame ({cut}/{len(frame)} bytes sent)",
                maybe_applied=False,
            )
        stale_before = 0
        if (
            safe
            and self._held is not None
            and draws["stale"] < plan.stale_rate
        ):
            # a delayed copy of an earlier frame lands first: the
            # lockstep protocol's manifestation of reordering
            self.counts["stale"] += 1
            send(self._held)
            stale_before += 1
        send(frame)
        duplicates_after = 0
        if safe and draws["duplicate"] < plan.duplicate_rate:
            self.counts["duplicate"] += 1
            send(frame)
            duplicates_after += 1
        if safe:
            self._held = frame
        if draws["drop_reply"] < plan.drop_reply_rate:
            self.counts["drop_reply"] += 1
            raise ChaosInjectedNetworkError(
                "injected reply drop after full send", maybe_applied=True
            )
        for _ in range(stale_before):
            recv()  # the stale frame's (duplicate-)ack: not ours, discard
        reply = recv()
        for _ in range(duplicates_after):
            recv()  # the duplicate's ack: identical request, discard
        return reply
