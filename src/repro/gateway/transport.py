"""Gateway transports: framed JSONL over sockets, plus in-process loopback.

One request/reply protocol, two carriers:

* :class:`LoopbackTransport` hands the request dict straight to the
  service handler -- zero I/O, fully deterministic, what the
  27-scenario byte-identity battery drives;
* :class:`GatewaySocketServer` / :class:`GatewayClient` speak the same
  dicts as newline-framed JSON over TCP (one JSON object per line,
  UTF-8), reusing the journal's :func:`raw_to_json` wire form for
  alerts.  The server runs one thread per connection so a long-poll
  ``subscribe`` can block without stalling ingestion.

Both carriers funnel into a single ``handler(request) -> reply``
callable, so everything observable -- ordering, admission, incidents --
is transport-independent by construction.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Callable, Dict, List, Optional, Set, Tuple

from .config import GatewayParams

#: The request/reply message shape on both carriers.
Message = Dict[str, object]
Handler = Callable[[Message], Message]


def encode_frame(message: Message) -> bytes:
    """One message -> one newline-terminated JSON line."""
    if not isinstance(message, dict):
        raise ValueError("gateway frame must be a JSON object")
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode_frame(line: bytes) -> Message:
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("gateway frame must be a JSON object")
    return payload


class LoopbackTransport:
    """In-process carrier: request dicts go straight to the handler.

    Round-trips every message through the frame codec so the loopback
    battery exercises the exact wire encoding the socket path uses --
    a loopback-green, socket-red encoding bug is impossible.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def request(self, message: Message) -> Message:
        reply = self._handler(decode_frame(encode_frame(message)))
        return decode_frame(encode_frame(reply))


class GatewayClient:
    """Blocking JSONL client for the gateway socket server."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("rb")

    def request(self, message: Message) -> Message:
        self._sock.sendall(encode_frame(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return decode_frame(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class GatewaySocketServer:
    """Threaded accept loop serving framed JSONL request/reply."""

    def __init__(self, handler: Handler, params: GatewayParams) -> None:
        self._handler = handler
        self._params = params
        self._listener = socket.create_server(
            (params.host, params.port), backlog=params.backlog
        )
        self._listener.settimeout(params.accept_timeout_s)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conns: Set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()
            conn.settimeout(self._params.socket_timeout_s)
            with self._conns_lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        reader = conn.makefile("rb")
        try:
            for line in reader:
                try:
                    request = decode_frame(line)
                except ValueError as exc:
                    reply: Message = {"ok": False, "error": f"bad frame: {exc}"}
                else:
                    reply = self._handler(request)
                try:
                    conn.sendall(encode_frame(reply))
                except OSError:
                    break
        except (OSError, ValueError):
            pass  # connection torn down mid-read; nothing to salvage
        finally:
            reader.close()
            with self._conns_lock:
                self._conns.discard(conn)
            conn.close()

    def stop(self) -> None:
        """Stop accepting, close every connection, join the threads."""
        self._stopping.set()
        self._listener.close()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)
