"""Gateway transports: framed JSONL over sockets, plus in-process loopback.

One request/reply protocol, two carriers:

* :class:`LoopbackTransport` hands the request dict straight to the
  service handler -- zero I/O, fully deterministic, what the
  27-scenario byte-identity battery drives;
* :class:`GatewaySocketServer` / :class:`GatewayClient` speak the same
  dicts as newline-framed JSON over TCP (one JSON object per line,
  UTF-8), reusing the journal's :func:`raw_to_json` wire form for
  alerts.  The server runs one thread per connection so a long-poll
  ``subscribe`` can block without stalling ingestion.

Both carriers funnel into a single ``handler(request) -> reply``
callable, so everything observable -- ordering, admission, incidents --
is transport-independent by construction.

The socket client is *resilient*: every transport failure surfaces as a
typed :class:`GatewayTransportError` that says whether the request may
already have been applied server-side, and :meth:`GatewayClient.request`
reconnects and retries (bounded attempts, seeded exponential backoff)
whenever a retry cannot double-apply -- either the failure happened
before the frame was fully sent, or the request is idempotent (queries,
lifecycle ops the service de-duplicates, and ``submit`` carrying an
explicit per-source seq, which the service acks as a duplicate instead
of re-ingesting).  Network chaos (see :mod:`repro.gateway.netchaos`)
plugs into exactly this seam.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import BinaryIO, Callable, Dict, Optional, Set, Tuple

from ..runtime.faults import RetryPolicy
from .config import GatewayParams

#: The request/reply message shape on both carriers.
Message = Dict[str, object]
Handler = Callable[[Message], Message]

#: Ops safe to resend even when the original may have been applied: pure
#: queries, plus the lifecycle ops the service answers idempotently
#: (``advance`` re-asserts a watermark, ``eof``/``finish``/``shutdown``
#: ack duplicates, ``checkpoint`` is a forced durable point).
IDEMPOTENT_OPS = frozenset(
    {
        "advance",
        "eof",
        "finish",
        "active",
        "reports",
        "history",
        "subscribe",
        "health",
        "metrics",
        "stats",
        "checkpoint",
        "shutdown",
    }
)


def replay_safe(message: Message) -> bool:
    """True if resending ``message`` can never double-apply it.

    ``submit`` is replay-safe only with an explicit per-source ``seq``:
    the service dedupes on it, so a retried submission whose first copy
    *was* applied comes back as a counted duplicate ack, never as a
    second ingest.  A seq-less submit must not be retried once the frame
    may have reached the server.
    """
    op = message.get("op")
    if op == "submit":
        return message.get("seq") is not None
    return op in IDEMPOTENT_OPS


class GatewayTransportError(ConnectionError):
    """A transport-layer failure talking to the gateway.

    ``maybe_applied`` is the bit the retry/dedupe logic runs on: False
    means the request frame cannot have reached the handler (connect or
    send failed), so a retry is always safe; True means the frame was
    fully sent and only the reply was lost, so only replay-safe requests
    may be retried.
    """

    def __init__(self, message: str, *, maybe_applied: bool) -> None:
        super().__init__(message)
        self.maybe_applied = maybe_applied


def encode_frame(message: Message, max_bytes: Optional[int] = None) -> bytes:
    """One message -> one newline-terminated JSON line."""
    if not isinstance(message, dict):
        raise ValueError("gateway frame must be a JSON object")
    frame = json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"
    if max_bytes is not None and len(frame) > max_bytes:
        raise ValueError(
            f"frame of {len(frame)} bytes exceeds the {max_bytes}-byte cap"
        )
    return frame


def decode_frame(line: bytes) -> Message:
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("gateway frame must be a JSON object")
    return payload


class LoopbackTransport:
    """In-process carrier: request dicts go straight to the handler.

    Round-trips every message through the frame codec so the loopback
    battery exercises the exact wire encoding the socket path uses --
    a loopback-green, socket-red encoding bug is impossible.
    """

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    def request(self, message: Message) -> Message:
        reply = self._handler(decode_frame(encode_frame(message)))
        return decode_frame(encode_frame(reply))


class GatewayClient:
    """Reconnecting JSONL client for the gateway socket server.

    One logical :meth:`request` survives connection resets, torn writes
    and lost replies: each attempt reconnects if needed, and failures
    are retried under ``params.client_max_attempts`` with seeded
    exponential backoff -- unless the frame may already have been
    applied and the request is not replay-safe, in which case the typed
    error escapes immediately (the caller holds the only safe decision).
    An optional :class:`~repro.gateway.netchaos.ChaosTransport` perturbs
    the wire exchange; ``None`` (the default, and what an empty net-chaos
    plan normalises to) leaves the exchange byte-for-byte untouched.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: Optional[float] = None,
        params: Optional[GatewayParams] = None,
        run_seed: int = 0,
        net_chaos: Optional["SupportsExchange"] = None,
    ) -> None:
        self._params = params or GatewayParams()
        self._host = host
        self._port = port
        self._timeout_s = (
            self._params.socket_timeout_s if timeout_s is None else timeout_s
        )
        self._retry = RetryPolicy(
            max_attempts=self._params.client_max_attempts,
            base_backoff_s=self._params.client_backoff_base_s,
            max_backoff_s=self._params.client_backoff_max_s,
        )
        self._rng = random.Random(f"gateway-retry:{run_seed}")
        self._chaos = net_chaos
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[BinaryIO] = None
        #: observability for tests and the CLI: attempts beyond the first
        #: per request, and connections established beyond the first.
        self.retries = 0
        self.reconnects = 0
        self._connects = 0
        self._connection()  # fail fast on an unreachable gateway

    # -- connection lifecycle ----------------------------------------------

    def _connection(self) -> Tuple[socket.socket, BinaryIO]:
        if self._sock is None or self._reader is None:
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout_s
                )
            except OSError as exc:
                self._sock = None
                raise GatewayTransportError(
                    f"connect to {self._host}:{self._port} failed: {exc}",
                    maybe_applied=False,
                ) from exc
            self._reader = self._sock.makefile("rb")
            self._connects += 1
            if self._connects > 1:
                self.reconnects += 1
        return self._sock, self._reader

    def _teardown(self) -> None:
        reader, sock = self._reader, self._sock
        self._reader = self._sock = None
        try:
            if reader is not None:
                reader.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    # -- wire primitives ----------------------------------------------------

    def _send(self, sock: socket.socket, data: bytes) -> None:
        try:
            sock.sendall(data)
        except socket.timeout as exc:
            raise GatewayTransportError(
                f"send to gateway timed out: {exc}", maybe_applied=False
            ) from exc
        except OSError as exc:
            # sendall raising means the frame was not fully delivered;
            # a partial line can never decode server-side, so the
            # request cannot have been applied
            raise GatewayTransportError(
                f"send to gateway failed: {exc}", maybe_applied=False
            ) from exc

    def _read_line(self, reader: BinaryIO) -> bytes:
        cap = self._params.max_frame_bytes
        try:
            line = reader.readline(cap + 1)
        except socket.timeout as exc:
            raise GatewayTransportError(
                f"gateway reply timed out: {exc}", maybe_applied=True
            ) from exc
        except OSError as exc:
            raise GatewayTransportError(
                f"gateway reply read failed: {exc}", maybe_applied=True
            ) from exc
        if not line:
            raise GatewayTransportError(
                "gateway closed the connection", maybe_applied=True
            )
        if not line.endswith(b"\n"):
            raise GatewayTransportError(
                f"gateway reply frame torn or over the {cap}-byte cap",
                maybe_applied=True,
            )
        return line

    def _exchange(self, frame: bytes, safe: bool) -> Message:
        sock, reader = self._connection()
        if self._chaos is not None:
            line = self._chaos.exchange(
                lambda data: self._send(sock, data),
                lambda: self._read_line(reader),
                frame,
                safe,
            )
        else:
            self._send(sock, frame)
            line = self._read_line(reader)
        return decode_frame(line)

    # -- public API ----------------------------------------------------------

    def request(self, message: Message) -> Message:
        frame = encode_frame(message, max_bytes=self._params.max_frame_bytes)
        safe = replay_safe(message)
        failure: Optional[GatewayTransportError] = None
        for attempt in range(self._retry.max_attempts):
            if attempt:
                self.retries += 1
                time.sleep(self._retry.backoff_s(attempt - 1, self._rng))
            try:
                return self._exchange(frame, safe)
            except GatewayTransportError as exc:
                self._teardown()
                if exc.maybe_applied and not safe:
                    # the server may hold this exact request; resending
                    # could double-apply -- surface the ambiguity
                    raise
                failure = exc
        assert failure is not None
        raise failure

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SupportsExchange:
    """Structural stand-in for :class:`~repro.gateway.netchaos.ChaosTransport`.

    Anything with this ``exchange`` shape can sit on the client's wire
    seam; keeping the protocol here avoids a transport -> netchaos
    import cycle.
    """

    def exchange(
        self,
        send: Callable[[bytes], None],
        recv: Callable[[], bytes],
        frame: bytes,
        safe: bool,
    ) -> bytes:
        raise NotImplementedError


class GatewaySocketServer:
    """Threaded accept loop serving framed JSONL request/reply."""

    def __init__(self, handler: Handler, params: GatewayParams) -> None:
        self._handler = handler
        self._params = params
        self._listener = socket.create_server(
            (params.host, params.port), backlog=params.backlog
        )
        self._listener.settimeout(params.accept_timeout_s)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._threads: Set[threading.Thread] = set()
        self._conns: Set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._accept_thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True
        )
        self._accept_thread.start()

    def live_connection_threads(self) -> int:
        """How many connection threads are still tracked (tests/metrics)."""
        with self._conns_lock:
            return len(self._threads)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()
            conn.settimeout(self._params.socket_timeout_s)
            thread = threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            )
            with self._conns_lock:
                if self._stopping.is_set():
                    conn.close()
                    break
                self._conns.add(conn)
                self._threads.add(thread)
            thread.start()

    def _reply(self, conn: socket.socket, reply: Message) -> bool:
        """Best-effort framed reply; False if the peer is unreachable."""
        try:
            conn.sendall(encode_frame(reply))
        except (OSError, ValueError):
            return False
        return True

    def _serve(self, conn: socket.socket) -> None:
        cap = self._params.max_frame_bytes
        reader = conn.makefile("rb")
        try:
            while not self._stopping.is_set():
                line = reader.readline(cap + 1)
                if not line:
                    break  # clean EOF: peer closed between frames
                if len(line) > cap:
                    # over-cap line: the rest of the stream cannot be
                    # re-framed reliably, so answer loudly and close
                    self._reply(
                        conn,
                        {
                            "ok": False,
                            "error": f"frame exceeds the {cap}-byte cap",
                        },
                    )
                    break
                if not line.endswith(b"\n"):
                    # torn frame: the peer died (or tore the write)
                    # mid-line; reply best-effort and close cleanly
                    # instead of wedging on a half request
                    self._reply(
                        conn,
                        {"ok": False, "error": "torn frame at end of stream"},
                    )
                    break
                try:
                    request = decode_frame(line)
                except ValueError as exc:
                    reply: Message = {"ok": False, "error": f"bad frame: {exc}"}
                else:
                    reply = self._handler(request)
                if not self._reply(conn, reply):
                    break
        except (OSError, ValueError):
            pass  # connection torn down mid-read; nothing to salvage
        finally:
            try:
                reader.close()
            except OSError:
                pass
            with self._conns_lock:
                self._conns.discard(conn)
                self._threads.discard(threading.current_thread())
            conn.close()

    def stop(self) -> None:
        """Stop accepting, close every connection, join the threads."""
        self._stopping.set()
        self._listener.close()
        with self._conns_lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=self._params.join_timeout_s)
        for thread in threads:
            thread.join(timeout=self._params.join_timeout_s)
