"""``repro.gateway``: network-facing ingestion + incident query service.

The serving layer over :mod:`repro.runtime`: sources submit alerts
through a validated, bounded, deterministically-sequenced front door;
operators query active incidents, history, per-source health and
metrics, or long-poll an incident subscription -- and the incident
stream served online is byte-identical (ids included) to an offline
replay of the same admitted alerts, including over a faulty network
(see :mod:`repro.gateway.netchaos`).  See ``README.md`` "Serving".
"""

from .config import GatewayParams
from .netchaos import (
    ChaosInjectedNetworkError,
    ChaosTransport,
    NetChaosPlan,
    empty_net_plan,
    net_chaos_or_none,
)
from .sequencer import DeterministicSequencer
from .service import GatewayService, IncidentEvent, QUEUE_RUNG
from .session import GatewayIngestSession
from .sources import (
    CANONICAL_SOURCES,
    GatewayError,
    SequenceError,
    SourceClosedError,
    SourceRegistry,
    SOURCE_PRIORITY,
    UnknownSourceError,
)
from .transport import (
    GatewayClient,
    GatewaySocketServer,
    GatewayTransportError,
    LoopbackTransport,
    decode_frame,
    encode_frame,
    replay_safe,
)

__all__ = [
    "CANONICAL_SOURCES",
    "ChaosInjectedNetworkError",
    "ChaosTransport",
    "DeterministicSequencer",
    "GatewayClient",
    "GatewayError",
    "GatewayIngestSession",
    "GatewayParams",
    "GatewayService",
    "GatewaySocketServer",
    "GatewayTransportError",
    "IncidentEvent",
    "LoopbackTransport",
    "NetChaosPlan",
    "QUEUE_RUNG",
    "SequenceError",
    "SOURCE_PRIORITY",
    "SourceClosedError",
    "SourceRegistry",
    "UnknownSourceError",
    "decode_frame",
    "empty_net_plan",
    "encode_frame",
    "net_chaos_or_none",
    "replay_safe",
]
