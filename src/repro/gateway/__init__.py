"""``repro.gateway``: network-facing ingestion + incident query service.

The serving layer over :mod:`repro.runtime`: sources submit alerts
through a validated, bounded, deterministically-sequenced front door;
operators query active incidents, history, per-source health and
metrics, or long-poll an incident subscription -- and the incident
stream served online is byte-identical (ids included) to an offline
replay of the same admitted alerts.  See ``README.md`` "Serving".
"""

from .config import GatewayParams
from .sequencer import DeterministicSequencer
from .service import GatewayService, IncidentEvent, QUEUE_RUNG
from .sources import (
    CANONICAL_SOURCES,
    GatewayError,
    SequenceError,
    SourceClosedError,
    SourceRegistry,
    SOURCE_PRIORITY,
    UnknownSourceError,
)
from .transport import (
    GatewayClient,
    GatewaySocketServer,
    LoopbackTransport,
    decode_frame,
    encode_frame,
)

__all__ = [
    "CANONICAL_SOURCES",
    "DeterministicSequencer",
    "GatewayClient",
    "GatewayError",
    "GatewayParams",
    "GatewayService",
    "GatewaySocketServer",
    "IncidentEvent",
    "LoopbackTransport",
    "QUEUE_RUNG",
    "SequenceError",
    "SOURCE_PRIORITY",
    "SourceClosedError",
    "SourceRegistry",
    "UnknownSourceError",
    "decode_frame",
    "encode_frame",
]
