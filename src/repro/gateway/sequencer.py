"""Deterministic merge of concurrent sources into one total order.

The gateway's signature property -- incidents served online are
byte-identical (ids included) to an offline replay -- reduces to one
question: in what order do admitted alerts reach the runtime?  The
sequencer answers it with a total order that does not depend on arrival
interleaving:

    ``(timestamp, source_priority, seq)``

where ``source_priority`` is the fixed Table-2 rank from
:mod:`repro.gateway.sources` and ``seq`` is the per-source monotone
sequence number.  Alerts are held in a heap keyed by that triple and
released only once no source could still submit an *earlier* key:

* each source carries a **watermark** -- the timestamp of its latest
  submission (per-source timestamps are non-decreasing, enforced by the
  registry, so no later submission can fall below it);
* an alert at timestamp ``t`` is releasable iff ``t`` is *strictly*
  below the minimum watermark over all live sources.  Strict, because a
  source sitting exactly at the frontier may still submit at ``t`` with
  a lower-priority key (its rank may beat a queued alert's rank);
* ``eof`` lifts a source's watermark to +inf; once every source is done
  the frontier is +inf and everything drains in key order.

Release order is therefore a pure function of the *set* of submissions,
never of their arrival interleaving -- the Hypothesis battery in
``tests/gateway/test_sequencer_properties.py`` pins exactly that.
"""

from __future__ import annotations

import heapq
from typing import Dict, Generic, List, Mapping, Set, Tuple, TypeVar

from .sources import SequenceError, SourceClosedError, UnknownSourceError

T = TypeVar("T")

#: Heap entry: the ordering triple, then the source name, then the
#: payload.  ``(timestamp, priority, seq)`` is globally unique --
#: priority is unique per source and seq unique within one -- so the
#: payload itself is never compared.
_Entry = Tuple[float, int, int, str, T]


class DeterministicSequencer(Generic[T]):
    """Watermarked heap-merge of per-source substreams."""

    def __init__(self, priorities: Mapping[str, int]) -> None:
        self._priority: Dict[str, int] = dict(priorities)
        self._watermark: Dict[str, float] = {
            source: float("-inf") for source in self._priority
        }
        self._eof: Set[str] = set()
        self._heap: List[_Entry[T]] = []
        self._pending: Dict[str, int] = {source: 0 for source in self._priority}

    # -- submission --------------------------------------------------------

    def submit(self, source: str, timestamp: float, seq: int, payload: T) -> List[T]:
        """Queue one alert; return whatever the frontier now releases."""
        if source not in self._priority:
            raise UnknownSourceError(f"unknown source {source!r}")
        if source in self._eof:
            raise SourceClosedError(f"source {source!r} already sent eof")
        if timestamp < self._watermark[source]:
            raise SequenceError(
                f"source {source!r} timestamp {timestamp} regresses below "
                f"its watermark {self._watermark[source]}"
            )
        heapq.heappush(
            self._heap,
            (timestamp, self._priority[source], seq, source, payload),
        )
        self._watermark[source] = timestamp
        self._pending[source] += 1
        return self._release()

    def advance(self, source: str, timestamp: float) -> List[T]:
        """Heartbeat: lift a source's watermark without submitting.

        A quiet source gates the frontier exactly like a busy one (that
        is what makes release order arrival-invariant), so sources with
        nothing to report punctuate with their current clock instead --
        the promise "nothing from me below ``timestamp``" -- and the
        frontier keeps moving."""
        if source not in self._priority:
            raise UnknownSourceError(f"unknown source {source!r}")
        if source in self._eof:
            raise SourceClosedError(f"source {source!r} already sent eof")
        if timestamp < self._watermark[source]:
            raise SequenceError(
                f"source {source!r} heartbeat {timestamp} regresses below "
                f"its watermark {self._watermark[source]}"
            )
        self._watermark[source] = timestamp
        return self._release()

    def eof(self, source: str) -> List[T]:
        """Declare a source done; its watermark stops gating the frontier."""
        if source not in self._priority:
            raise UnknownSourceError(f"unknown source {source!r}")
        if source in self._eof:
            raise SourceClosedError(f"source {source!r} already sent eof")
        self._eof.add(source)
        return self._release()

    def flush(self) -> List[T]:
        """Drain every queued alert in key order (end-of-stream only).

        Flushing while sources are still live forfeits the ordering
        guarantee for anything they submit afterwards; the gateway only
        calls this from its explicit ``finish`` operation.
        """
        released: List[T] = []
        while self._heap:
            released.append(self._pop())
        return released

    # -- introspection -----------------------------------------------------

    def pending(self) -> int:
        return len(self._heap)

    def pending_for(self, source: str) -> int:
        return self._pending[source]

    def watermark(self, source: str) -> float:
        return float("inf") if source in self._eof else self._watermark[source]

    def watermarks(self) -> Dict[str, float]:
        return {source: self.watermark(source) for source in self._priority}

    def frontier(self) -> float:
        """Minimum watermark over all sources: the release boundary."""
        return min(self.watermark(source) for source in self._priority)

    # -- internals ---------------------------------------------------------

    def _release(self) -> List[T]:
        frontier = self.frontier()
        released: List[T] = []
        while self._heap and self._heap[0][0] < frontier:
            released.append(self._pop())
        return released

    def _pop(self) -> T:
        timestamp, priority, seq, source, payload = heapq.heappop(self._heap)
        self._pending[source] -= 1
        return payload

    # -- checkpoint plumbing -----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Checkpointable state, *including* the pending heap.

        A draining gateway must not flush: pending alerts were withheld
        precisely because a live source could still order ahead of them,
        and that remains true across a restart.  They ride the checkpoint
        instead and are restored un-released.
        """
        return {
            "watermarks": dict(self._watermark),
            "eof": sorted(self._eof),
            "heap": list(self._heap),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        watermarks = state["watermarks"]
        self._watermark = {
            source: float(stamp) for source, stamp in watermarks.items()  # type: ignore[union-attr]
        }
        self._eof = set(state["eof"])  # type: ignore[arg-type]
        self._heap = [tuple(entry) for entry in state["heap"]]  # type: ignore[arg-type, misc]
        heapq.heapify(self._heap)
        self._pending = {source: 0 for source in self._priority}
        for entry in self._heap:
            self._pending[entry[3]] += 1
