"""The gateway service: ordered ingestion + incident queries over the runtime.

:class:`GatewayService` wraps one :class:`~repro.runtime.service.RuntimeService`
behind a request/reply API (see :mod:`repro.gateway.transport`) and owns
everything a *served* runtime needs that an offline one does not:

* **ordering** -- submissions from concurrent sources pass through the
  :class:`~repro.gateway.sequencer.DeterministicSequencer`, so the
  runtime ingests them in the arrival-independent total order
  ``(timestamp, source_priority, seq)`` and the served incident stream
  is byte-identical (ids included) to an offline replay;
* **backpressure** -- each source is bounded to ``queue_limit`` pending
  (submitted-but-unreleased) alerts; overflow is shed loudly through the
  admission controller's books (rung ``"source_queue"``);
* **subscription** -- incident opens/closes are observed via the
  runtime's pipeline tap and appended to a cursor-ordered event log that
  ``history``/``subscribe`` serve (long-poll with resume-from-cursor);
* **lifecycle** -- drain-checkpoint-shutdown stores the sequencer's
  *pending heap* in the checkpoint ``extras`` (never flushed: a live
  source could still order ahead of held alerts, and that stays true
  across a restart), and :meth:`GatewayService.resume` rebuilds gateway
  state before the journal-tail replay re-drives the tap.

Thread-safety: one re-entrant lock guards every state transition; the
subscription condition shares it, so event appends and long-poll wakeups
are atomic with the sweeps that produce them.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
from typing import Dict, List, Optional

from ..core.config import SkyNetConfig
from ..core.locator import SweepResult
from ..core.pipeline import PipelineObserver
from ..monitors.base import RawAlert
from ..simulation.state import NetworkState
from ..runtime.faults import ChaosPlan
from ..runtime.journal import raw_from_json, raw_to_json
from ..runtime.service import RuntimeService
from .config import GatewayParams
from .sequencer import DeterministicSequencer
from .sources import (
    GatewayError,
    SequenceError,
    SourceClosedError,
    SourceRegistry,
    SOURCE_PRIORITY,
)
from .transport import Message

#: The admission-ladder rung name gateway queue sheds are booked under.
QUEUE_RUNG = "source_queue"


@dataclasses.dataclass(frozen=True)
class IncidentEvent:
    """One entry of the subscription log: an incident opened or closed."""

    cursor: int
    kind: str  # "opened" | "closed"
    at: float  # sweep sim-time that produced the event
    incident_id: str
    root: str
    start_time: float
    end_time: Optional[float]

    def to_json(self) -> Dict[str, object]:
        return {
            "cursor": self.cursor,
            "kind": self.kind,
            "at": self.at,
            "incident_id": self.incident_id,
            "root": self.root,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "IncidentEvent":
        end = data["end_time"]
        return cls(
            cursor=int(data["cursor"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            at=float(data["at"]),  # type: ignore[arg-type]
            incident_id=str(data["incident_id"]),
            root=str(data["root"]),
            start_time=float(data["start_time"]),  # type: ignore[arg-type]
            end_time=None if end is None else float(end),  # type: ignore[arg-type]
        )


class _IncidentTap(PipelineObserver):
    """Pipeline observer forwarding sweep results into the event log."""

    def __init__(self, gateway: "GatewayService") -> None:
        self._gateway = gateway

    def on_sweep(self, now: float, result: SweepResult) -> None:
        self._gateway._observe_sweep(now, result)


class GatewayService:
    """Servable front half of the runtime: validate, order, serve."""

    def __init__(
        self,
        topology: object,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        directory: Optional[pathlib.Path] = None,
        chaos: Optional[ChaosPlan] = None,
        run_seed: int = 0,
        params: Optional[GatewayParams] = None,
        resume: bool = False,
    ) -> None:
        self.params = params or GatewayParams()
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._events: List[IncidentEvent] = []
        self._draining = False
        self._finished = False
        self.registry = SourceRegistry()
        self.sequencer: DeterministicSequencer[RawAlert] = DeterministicSequencer(
            SOURCE_PRIORITY
        )
        tap = _IncidentTap(self)
        if resume:
            if directory is None:
                raise ValueError("resume requires a persistence directory")
            self.runtime = RuntimeService.resume(
                topology,  # type: ignore[arg-type]
                directory,
                config=config,
                state=state,
                chaos=chaos,
                run_seed=run_seed,
                tap=tap,
                extras_hook=self._load_extras,
            )
        else:
            self.runtime = RuntimeService(
                topology,  # type: ignore[arg-type]
                config=config,
                state=state,
                directory=directory,
                chaos=chaos,
                run_seed=run_seed,
                tap=tap,
            )
        self.runtime.checkpoint_extras = self._extras

    # -- ingestion ---------------------------------------------------------

    def submit(
        self,
        raw: RawAlert,
        source: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Message:
        """Offer one alert from a source; may release a batch downstream."""
        with self._lock:
            if self._draining or self._finished:
                raise SourceClosedError("gateway is draining; not accepting")
            name = raw.tool if source is None else source
            if name != raw.tool:
                raise SequenceError(
                    f"source {name!r} cannot submit an alert from tool "
                    f"{raw.tool!r}"
                )
            record = self.registry.record(name)  # raises on unknown source
            if seq is not None and seq < record.next_seq:
                # replay of an already-consumed seq: a client retry whose
                # original reply was lost, or a stale duplicate frame the
                # network re-delivered.  Ack it (with the authoritative
                # next_seq so a restarted client can fast-forward), count
                # it, and never re-ingest it -- duplicates live in the
                # metrics, not in the incident stream.  Checked before
                # the eof guard: a stale replay may land after its
                # source closed, and it is still just a duplicate.
                self._count_duplicate()
                return {
                    "ok": True,
                    "admitted": True,
                    "duplicate": True,
                    "seq": seq,
                    "next_seq": record.next_seq,
                    "released": 0,
                }
            if record.eof:
                raise SourceClosedError(f"source {name!r} already sent eof")
            if self.sequencer.pending_for(name) >= self.params.queue_limit:
                self.registry.mark_shed(name)
                self.runtime.admission.count_shed(QUEUE_RUNG)
                self.runtime.metrics.counter(
                    "gateway_queue_shed_total",
                    "alerts refused by a full per-source gateway queue",
                ).inc()
                return {"ok": True, "admitted": False, "shed": QUEUE_RUNG}
            assigned = self.registry.assign(name, raw.timestamp, seq)
            self.runtime.metrics.counter(
                "gateway_submitted_total", "alerts accepted by the gateway"
            ).inc()
            released = self.sequencer.submit(name, raw.timestamp, assigned, raw)
            self._ingest_released(released)
            return {
                "ok": True,
                "admitted": True,
                "seq": assigned,
                "released": len(released),
            }

    def advance(self, source: str, timestamp: float) -> Message:
        """Watermark heartbeat: "nothing from ``source`` below ``timestamp``"."""
        with self._lock:
            if self._draining or self._finished:
                raise SourceClosedError("gateway is draining; not accepting")
            record = self.registry.record(source)
            if record.eof:
                raise SourceClosedError(f"source {source!r} already sent eof")
            if (
                record.last_timestamp is not None
                and timestamp < record.last_timestamp
            ):
                raise SequenceError(
                    f"source {source!r} heartbeat {timestamp} regresses "
                    f"below {record.last_timestamp}"
                )
            record.last_timestamp = timestamp
            released = self.sequencer.advance(source, timestamp)
            self._ingest_released(released)
            return {"ok": True, "released": len(released)}

    def eof(self, source: str) -> Message:
        """Declare a source done for this stream (idempotent: retries ack)."""
        with self._lock:
            if self._finished:
                raise SourceClosedError("gateway already finished")
            if self.registry.record(source).eof:
                # a retried eof whose original reply was lost: the close
                # already happened, so ack instead of erroring the retry
                self._count_duplicate()
                return {
                    "ok": True,
                    "released": 0,
                    "all_eof": self.registry.all_eof(),
                    "duplicate": True,
                }
            self.registry.mark_eof(source)
            released = self.sequencer.eof(source)
            self._ingest_released(released)
            return {
                "ok": True,
                "released": len(released),
                "all_eof": self.registry.all_eof(),
            }

    def finish(self) -> Message:
        """End of stream: drain the sequencer and close out incidents.

        Idempotent: a retried finish re-acks with the incident count
        instead of erroring, so a client that lost the first reply can
        safely resend.
        """
        with self._lock:
            if self._finished:
                self._count_duplicate()
                return {
                    "ok": True,
                    "released": 0,
                    "incidents": len(self.runtime.reports()),
                    "duplicate": True,
                }
            released = self.sequencer.flush()
            self._ingest_released(released)
            if self.runtime.checkpoints is not None:
                self.runtime.finish()
            else:
                self.runtime.pipeline.finish()
            self._finished = True
            self._wakeup.notify_all()
            return {
                "ok": True,
                "released": len(released),
                "incidents": len(self.runtime.reports()),
            }

    def _count_duplicate(self) -> None:
        self.runtime.metrics.counter(
            "gateway_duplicates_total",
            "replayed requests acked idempotently, never re-applied",
        ).inc()

    def _ingest_released(self, released: List[RawAlert]) -> None:
        metrics = self.runtime.metrics
        for raw in released:
            self.runtime.ingest(raw)
        if released:
            metrics.counter(
                "gateway_released_total",
                "alerts released downstream in deterministic order",
            ).inc(len(released))
        metrics.gauge(
            "gateway_pending_alerts",
            "alerts held by the sequencer awaiting the watermark frontier",
        ).set(self.sequencer.pending())

    # -- queries -----------------------------------------------------------

    def active(self) -> Message:
        with self._lock:
            incidents = [
                {
                    "incident_id": inc.incident_id,
                    "root": str(inc.root),
                    "status": inc.status.value,
                    "start_time": inc.start_time,
                    "created_at": inc.created_at,
                }
                for inc in self.runtime.pipeline.locator.open_incidents
            ]
            return {"ok": True, "incidents": incidents}

    def reports(self) -> Message:
        with self._lock:
            return {
                "ok": True,
                "reports": [
                    {
                        "incident_id": report.incident.incident_id,
                        "score": report.score,
                        "urgent": report.urgent,
                        "render": report.render(),
                    }
                    for report in self.runtime.reports()
                ],
            }

    def history(self, cursor: int = 0) -> Message:
        with self._lock:
            return self._events_since(cursor)

    def subscribe(
        self, cursor: int = 0, timeout_s: Optional[float] = None
    ) -> Message:
        """Long-poll: block until events beyond ``cursor`` exist (or timeout).

        Wakeups only happen on real transitions (event append, finish,
        drain), so a single bounded wait per notification suffices; the
        patience cap is a wall-clock serving concern that never touches
        the pipeline's sim clock.
        """
        patience = (
            self.params.poll_timeout_s if timeout_s is None else timeout_s
        )
        with self._wakeup:
            while (
                len(self._events) <= cursor
                and not self._finished
                and not self._draining
            ):
                if not self._wakeup.wait(timeout=patience):
                    break
            return self._events_since(cursor)

    def _events_since(self, cursor: int) -> Message:
        if cursor < 0:
            raise SequenceError(f"cursor must be >= 0, got {cursor}")
        events = [event.to_json() for event in self._events[cursor:]]
        return {
            "ok": True,
            "events": events,
            "cursor": len(self._events),
            "finished": self._finished,
            "draining": self._draining,
        }

    def health(self) -> Message:
        with self._lock:
            degraded = self.runtime.degraded_sources()
            sources: Dict[str, object] = {}
            for name, record in sorted(self.registry.snapshot().items()):
                watermark = self.sequencer.watermark(name)
                sources[name] = {
                    "priority": record.priority,
                    "next_seq": record.next_seq,
                    "last_timestamp": record.last_timestamp,
                    "submitted": record.submitted,
                    "shed": record.shed,
                    "eof": record.eof,
                    "pending": self.sequencer.pending_for(name),
                    # +/-inf is not JSON; null means "not (yet) gating"
                    "watermark": (
                        None
                        if watermark in (float("inf"), float("-inf"))
                        else watermark
                    ),
                    "degraded": name in degraded,
                }
            return {
                "ok": True,
                "sources": sources,
                "degraded": sorted(degraded),
            }

    def metrics(self) -> Message:
        with self._lock:
            return {"ok": True, "metrics": self.runtime.metrics.as_dict()}

    def stats(self) -> Message:
        with self._lock:
            admission = self.runtime.admission
            return {
                "ok": True,
                "shards": self.runtime.shards,
                "backend": self.runtime.config.runtime.backend,
                "seq": self.runtime._seq,  # lint: allow REP014
                "sim_now": self.runtime.pipeline.now,
                "offered": admission.offered,
                "admitted": admission.admitted,
                "sheds": dict(admission.sheds),
                "pending": self.sequencer.pending(),
                "events": len(self._events),
                "finished": self._finished,
                "draining": self._draining,
            }

    # -- lifecycle ---------------------------------------------------------

    def checkpoint(self) -> Message:
        """Force a durable point now (requires a persistence directory)."""
        with self._lock:
            self.runtime.checkpoint()
            return {"ok": True, "seq": self.runtime._seq}  # lint: allow REP014

    def shutdown(self) -> Message:
        """Drain-checkpoint-shutdown (the SIGTERM path).

        Stops accepting, checkpoints runtime *and* gateway state --
        including the sequencer's un-released pending heap, which is
        deliberately **not** flushed (releasing it would break the total
        order against sources that resume submitting earlier timestamps
        after restart) -- and wakes every long-poller.
        """
        with self._lock:
            if not self._draining:
                self._draining = True
                if self.runtime.checkpoints is not None:
                    self.runtime.checkpoint()
                if self.runtime.journal is not None:
                    self.runtime.journal.close()
                locator = self.runtime.pipeline.locator
                close = getattr(locator, "close", None)
                if callable(close):
                    close()
                self._wakeup.notify_all()
            return {"ok": True, "pending": self.sequencer.pending()}

    @classmethod
    def resume(
        cls,
        topology: object,
        directory: pathlib.Path,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        chaos: Optional[ChaosPlan] = None,
        run_seed: int = 0,
        params: Optional[GatewayParams] = None,
    ) -> "GatewayService":
        """Rebuild a drained (or killed) gateway from its directory.

        Gateway state (source registry, sequencer incl. pending heap,
        event log) restores from the checkpoint ``extras`` *before* the
        runtime replays its journal tail, so replayed sweeps append to
        the restored event log with consistent cursors.  After a clean
        drain the tail is empty and the served stream continues exactly;
        after a hard kill the tail replay re-emits events subscribers may
        already have seen (at-least-once across crashes).
        """
        return cls(
            topology,
            config=config,
            state=state,
            directory=directory,
            chaos=chaos,
            run_seed=run_seed,
            params=params,
            resume=True,
        )

    # -- request dispatch ---------------------------------------------------

    def handle(self, request: Message) -> Message:
        """One transport-independent request -> reply."""
        op = request.get("op")
        try:
            if op == "submit":
                raw = raw_from_json(request["raw"])  # type: ignore[arg-type]
                source = request.get("source")
                seq = request.get("seq")
                return self.submit(
                    raw,
                    source=None if source is None else str(source),
                    seq=None if seq is None else int(seq),  # type: ignore[arg-type]
                )
            if op == "advance":
                return self.advance(
                    str(request["source"]),
                    float(request["timestamp"]),  # type: ignore[arg-type]
                )
            if op == "eof":
                return self.eof(str(request["source"]))
            if op == "finish":
                return self.finish()
            if op == "active":
                return self.active()
            if op == "reports":
                return self.reports()
            if op == "history":
                return self.history(int(request.get("cursor", 0)))  # type: ignore[arg-type]
            if op == "subscribe":
                timeout = request.get("timeout_s")
                return self.subscribe(
                    int(request.get("cursor", 0)),  # type: ignore[arg-type]
                    None if timeout is None else float(timeout),  # type: ignore[arg-type]
                )
            if op == "health":
                return self.health()
            if op == "metrics":
                return self.metrics()
            if op == "stats":
                return self.stats()
            if op == "checkpoint":
                return self.checkpoint()
            if op == "shutdown":
                return self.shutdown()
        except GatewayError as exc:
            return {
                "ok": False,
                "error": str(exc),
                "kind": type(exc).__name__,
            }
        except KeyError as exc:
            return {"ok": False, "error": f"missing field {exc}"}
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- tap + checkpoint extras --------------------------------------------

    def _observe_sweep(self, now: float, result: SweepResult) -> None:
        """Pipeline tap: append opened/closed transitions to the event log.

        Runs inside ``runtime.ingest`` while :meth:`submit` holds the
        lock (re-entrant), and single-threaded during resume's journal
        replay.
        """
        with self._wakeup:
            for incident in result.opened:
                self._append_event("opened", now, incident.incident_id,
                                   str(incident.root), incident.start_time,
                                   None)
            for incident in result.closed:
                self._append_event("closed", now, incident.incident_id,
                                   str(incident.root), incident.start_time,
                                   incident.end_time)
            if result.opened or result.closed:
                self._wakeup.notify_all()

    def _append_event(
        self,
        kind: str,
        at: float,
        incident_id: str,
        root: str,
        start_time: float,
        end_time: Optional[float],
    ) -> None:
        self._events.append(
            IncidentEvent(
                cursor=len(self._events),
                kind=kind,
                at=at,
                incident_id=incident_id,
                root=root,
                start_time=start_time,
                end_time=end_time,
            )
        )

    def _extras(self) -> Dict[str, object]:
        """Gateway state riding the runtime checkpoint (``extras`` key)."""
        heap_state = self.sequencer.state_dict()
        # the heap holds RawAlert payloads; encode them to the journal's
        # wire form so the checkpoint stays plain-data
        heap_state["heap"] = [
            (entry[0], entry[1], entry[2], entry[3], raw_to_json(entry[4]))
            for entry in heap_state["heap"]  # type: ignore[union-attr, index]
        ]
        return {
            "gateway": {
                "registry": self.registry.state_dict(),
                "sequencer": heap_state,
                "events": [event.to_json() for event in self._events],
                "finished": self._finished,
            }
        }

    def _load_extras(self, extras: Dict[str, object]) -> None:
        payload = extras.get("gateway")
        if not isinstance(payload, dict):
            return
        self.registry.load_state_dict(payload["registry"])
        sequencer_state = dict(payload["sequencer"])
        sequencer_state["heap"] = [
            (entry[0], entry[1], entry[2], entry[3], raw_from_json(entry[4]))
            for entry in sequencer_state["heap"]
        ]
        self.sequencer.load_state_dict(sequencer_state)
        self._events = [
            IncidentEvent.from_json(event) for event in payload["events"]
        ]
        self._finished = bool(payload.get("finished", False))
