"""``python -m repro.gateway``: serve, feed and query the gateway.

Three subcommands over one framed-JSONL socket protocol:

* ``serve`` -- host a :class:`~repro.gateway.service.GatewayService`
  (fresh or ``--resume``\\ d from a run directory) behind a socket
  server; SIGTERM/SIGINT triggers the graceful
  drain-checkpoint-shutdown path (the sequencer's pending heap rides
  the checkpoint, never flushed);
* ``ingest`` -- simulate a scenario flood (same flags as the runtime
  CLI), split it into per-source substreams and submit them through a
  client connection, closing with per-source ``eof`` and ``finish``;
* ``query`` -- one-shot client for the query API (``active``,
  ``reports``, ``health``, ``metrics``, ``stats``, ``history``,
  ``subscribe``), printing the JSON reply.

The serving knobs (``--queue-limit``, addresses, poll patience) are
wall-clock concerns and never touch the pipeline; the runtime knobs are
the same flags -- literally the same ``argparse`` group -- as
``python -m repro.runtime``.
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import signal
import sys
import threading
from typing import Dict, List, Optional, Sequence

from ..monitors.base import RawAlert
from ..runtime.cli import (
    TOPOLOGIES,
    SCENARIOS,
    _build_chaos,
    _build_config,
    _stream,
    _topology,
    add_chaos_arguments,
    add_service_arguments,
)
from .config import GatewayParams
from .netchaos import (
    FAULT_KINDS,
    ChaosTransport,
    NetChaosPlan,
    net_chaos_or_none,
)
from .service import GatewayService
from .session import GatewayIngestSession
from .sources import SOURCE_PRIORITY
from .transport import GatewayClient, GatewaySocketServer

QUERY_OPS = (
    "active", "reports", "health", "metrics", "stats", "history", "subscribe",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Network-facing ingestion + incident query service "
        "over the sharded runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="host the gateway service on a socket"
    )
    add_service_arguments(serve)
    add_chaos_arguments(serve)
    _add_gateway_arguments(serve)
    serve.add_argument(
        "--port-file", type=pathlib.Path, default=None, metavar="PATH",
        help="write 'host port' of the bound socket to this file "
        "(for scripts that asked for an ephemeral port)",
    )

    ingest = sub.add_parser(
        "ingest", help="simulate a flood and submit it to a serving gateway"
    )
    _add_client_arguments(ingest)
    ingest.add_argument(
        "--topology", choices=TOPOLOGIES, default="default",
        help="fabric to simulate (default: %(default)s)",
    )
    ingest.add_argument(
        "--scenario", choices=SCENARIOS, default="flood",
        help="failure scenario driving the flood (default: %(default)s)",
    )
    ingest.add_argument(
        "--duration", type=float, default=900.0,
        help="simulated seconds to stream (default: %(default)s)",
    )
    ingest.add_argument(
        "--alerts", type=int, default=None,
        help="stop after this many raw alerts (default: unlimited)",
    )
    ingest.add_argument("--seed", type=int, default=2025)
    ingest.add_argument(
        "--no-finish", action="store_true",
        help="leave the stream open: skip the closing eof/finish ops",
    )
    chaos_net = ingest.add_argument_group(
        "network chaos", "seeded fault injection on the client wire"
    )
    chaos_net.add_argument(
        "--chaos-net", action="append", default=None, metavar="KIND:RATE",
        help="inject a wire fault class at a per-exchange probability; "
        f"KIND is one of {', '.join(FAULT_KINDS)} (repeatable)",
    )
    chaos_net.add_argument(
        "--chaos-net-seed", type=int, default=0,
        help="seed namespacing the wire-fault RNG (default: %(default)s)",
    )

    query = sub.add_parser("query", help="query a serving gateway")
    _add_client_arguments(query)
    query.add_argument(
        "--op", choices=QUERY_OPS, default="stats",
        help="query operation (default: %(default)s)",
    )
    query.add_argument(
        "--cursor", type=int, default=0,
        help="event cursor for history/subscribe (default: %(default)s)",
    )
    query.add_argument(
        "--poll-timeout", type=float, default=None, metavar="WALL_S",
        help="subscribe long-poll patience (default: server's)",
    )
    return parser


def _add_gateway_arguments(parser: argparse.ArgumentParser) -> None:
    gateway = parser.add_argument_group("gateway", "serving-layer knobs")
    gateway.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default: %(default)s)",
    )
    gateway.add_argument(
        "--port", type=int, default=0,
        help="listen port; 0 picks an ephemeral port (default: %(default)s)",
    )
    gateway.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="max pending alerts per source before shedding "
        f"(default: {GatewayParams.queue_limit})",
    )


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="gateway address (default: %(default)s)",
    )
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="WALL_S",
        help="client socket timeout (default: %(default)s)",
    )


def _gateway_params(args: argparse.Namespace) -> GatewayParams:
    overrides: Dict[str, object] = {"host": args.host, "port": args.port}
    if args.queue_limit is not None:
        overrides["queue_limit"] = args.queue_limit
    return GatewayParams(**overrides)  # type: ignore[arg-type]


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.resume and args.dir is None:
        build_parser().error("--resume requires --dir")
    config = _build_config(args)
    chaos = _build_chaos(args)
    topo = _topology(args.topology)
    params = _gateway_params(args)

    if args.resume:
        service = GatewayService.resume(
            topo, args.dir, config=config, chaos=chaos,
            run_seed=args.seed, params=params,
        )
        recovery = service.runtime.recovery
        if recovery is not None:
            print(recovery.render(), flush=True)
    else:
        service = GatewayService(
            topo, config=config, directory=args.dir, chaos=chaos,
            run_seed=args.seed, params=params,
        )

    server = GatewaySocketServer(service.handle, params)
    server.start()
    host, port = server.address
    print(f"gateway listening on {host} {port}", flush=True)
    if args.port_file is not None:
        args.port_file.write_text(f"{host} {port}\n")

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    while not stop.is_set() and not service.stats()["draining"]:
        stop.wait(params.serve_poll_interval_s)

    server.stop()
    reply = service.shutdown()
    print(
        f"gateway drained: {reply['pending']} alert(s) held for resume, "
        f"{service.stats()['events']} incident event(s) served",
        flush=True,
    )
    return 0


def _substreams(raws: Sequence[RawAlert]) -> Dict[str, List[RawAlert]]:
    """Split a delivered-at-ordered flood into per-source substreams.

    Each source's substream is stably re-sorted by *observation* time:
    delivery jitter can reorder one tool's alerts in the global stream,
    but a live monitor submits in its own clock order -- which is the
    non-decreasing-timestamp contract the registry enforces.
    """
    split: Dict[str, List[RawAlert]] = {}
    for raw in raws:
        split.setdefault(raw.tool, []).append(raw)
    for substream in split.values():
        substream.sort(key=lambda r: r.timestamp)
    return split


def _build_net_chaos(args: argparse.Namespace) -> Optional[NetChaosPlan]:
    """Assemble a wire-fault plan from repeated ``--chaos-net`` specs."""
    specs = args.chaos_net or []
    rates: Dict[str, float] = {}
    for spec in specs:
        kind, sep, rate = spec.partition(":")
        if not sep or kind not in FAULT_KINDS:
            build_parser().error(
                f"--chaos-net wants KIND:RATE with KIND in {FAULT_KINDS}, "
                f"got {spec!r}"
            )
        rates[f"{kind}_rate"] = float(rate)
    return net_chaos_or_none(
        NetChaosPlan(seed=args.chaos_net_seed, **rates)  # type: ignore[arg-type]
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    topo = _topology(args.topology)
    _state, raws = _stream(
        topo, args.scenario, args.seed, args.duration, args.alerts
    )
    split = _substreams(list(raws))
    net_plan = _build_net_chaos(args)
    wire = (
        None
        if net_plan is None
        else ChaosTransport(net_plan, run_seed=args.seed)
    )
    released = 0
    with GatewayClient(
        args.host,
        args.port,
        timeout_s=args.timeout,
        run_seed=args.seed,
        net_chaos=wire,
    ) as client:
        session = GatewayIngestSession(client)
        # session resume: learn each source's consumed frontier and skip
        # exactly that prefix of the (deterministic) substream, so a
        # restarted ingest re-offers only what the gateway never took
        frontiers = session.resync()
        skipped = 0
        for tool in sorted(split):
            consumed = frontiers.get(tool, 0)
            if consumed:
                split[tool] = split[tool][consumed:]
                skipped += consumed
        if skipped:
            print(f"resuming: {skipped} already-consumed alert(s) skipped")
        merged = heapq.merge(
            *(
                ((raw.timestamp, SOURCE_PRIORITY[tool], raw) for raw in substream)
                for tool, substream in sorted(split.items())
            )
        )
        # idle sources would gate the watermark frontier forever; close
        # them up front so the active substreams release continuously
        for tool in sorted(SOURCE_PRIORITY):
            if tool not in split:
                session.eof(tool)
        for _timestamp, _priority, raw in merged:
            reply = session.submit(raw)
            if not reply.get("ok"):
                print(f"error: {reply.get('error')}", file=sys.stderr)
                return 1
            released += int(reply.get("released", 0))  # type: ignore[arg-type]
        resilience = (
            f"{client.retries} retries, {client.reconnects} reconnects, "
            f"{session.duplicates} deduped"
        )
        if wire is not None:
            resilience += f", {wire.injected()} wire faults injected"
        if not args.no_finish:
            for tool in sorted(split):
                session.eof(tool)
            reply = session.finish()
            print(
                f"finished: {reply.get('incidents')} incident(s) from "
                f"{session.submitted} submitted, {session.sheds} shed at "
                f"the queues ({resilience})"
            )
        else:
            print(
                f"submitted {session.submitted} alert(s) ({released} "
                f"released, {session.sheds} shed); stream left open "
                f"({resilience})"
            )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    request: Dict[str, object] = {"op": args.op}
    if args.op in ("history", "subscribe"):
        request["cursor"] = args.cursor
    if args.op == "subscribe" and args.poll_timeout is not None:
        request["timeout_s"] = args.poll_timeout
    with GatewayClient(args.host, args.port, timeout_s=args.timeout) as client:
        reply = client.request(request)
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    return _cmd_query(args)
