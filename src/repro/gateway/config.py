"""Gateway tunables: the serving layer's knobs, separate from the pipeline's.

Everything here shapes *how traffic arrives and is asked for* -- queue
bounds, socket addressing, long-poll patience -- never what the pipeline
computes.  The analysis configuration stays in
:class:`repro.core.config.SkyNetConfig`; keeping the serving knobs in
their own frozen dataclass means a gateway in front of the runtime
cannot perturb the byte-identical incident stream the differential
battery pins (the timeouts below are wall-clock serving concerns and are
deliberately invisible to the sim-clock pipeline).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class GatewayParams:
    """Serving-layer parameters for :class:`repro.gateway.GatewayService`."""

    #: Bound on alerts a source may have submitted but not yet released
    #: by the sequencer; overflow is shed (counted, never silent).
    queue_limit: int = 256
    #: Socket listen address; port 0 asks the OS for an ephemeral port.
    host: str = "127.0.0.1"
    port: int = 0
    #: Listen backlog for the ingest/query socket.
    backlog: int = 16
    #: Default patience of a long-poll ``subscribe`` request (seconds of
    #: wall time; a serving concern, never fed to the pipeline).
    poll_timeout_s: float = 30.0
    #: Accept-loop wakeup cadence: how quickly a stopping server notices.
    accept_timeout_s: float = 0.5
    #: Per-connection socket timeout for clients.
    socket_timeout_s: float = 30.0
    #: Client resilience: total connect-or-exchange attempts per request
    #: before :class:`~repro.gateway.transport.GatewayTransportError`
    #: escapes to the caller.
    client_max_attempts: int = 5
    #: Seeded exponential-backoff base and cap between client retries
    #: (wall-clock serving concerns, never fed to the sim clock).
    client_backoff_base_s: float = 0.05
    client_backoff_max_s: float = 2.0
    #: Hard cap on one framed request/reply line on either carrier; a
    #: longer line is refused with a framed error, never buffered whole.
    max_frame_bytes: int = 1_048_576
    #: Patience when joining connection threads during server stop.
    join_timeout_s: float = 5.0
    #: ``serve`` main-loop wakeup cadence: how quickly the CLI notices a
    #: stop signal or a drain request (wall clock).
    serve_poll_interval_s: float = 0.2

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.poll_timeout_s < 0 or self.accept_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.client_max_attempts < 1:
            raise ValueError("client_max_attempts must be positive")
        if self.client_backoff_base_s < 0 or self.client_backoff_max_s < 0:
            raise ValueError("client backoff bounds must be non-negative")
        if self.max_frame_bytes < 2:
            raise ValueError("max_frame_bytes must fit at least one frame")
        if self.join_timeout_s <= 0:
            raise ValueError("join_timeout_s must be positive")
        if self.serve_poll_interval_s <= 0:
            raise ValueError("serve_poll_interval_s must be positive")
