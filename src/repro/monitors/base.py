"""Monitor framework: raw alerts and the polling base class.

Every data source in Table 2 is a :class:`Monitor` subclass that *observes*
the simulated :class:`~repro.simulation.state.NetworkState` on its own
period and emits :class:`RawAlert` records -- the heterogeneous, per-tool
formats SkyNet's preprocessor then has to normalise (§4.1).

Raw alerts intentionally differ across tools, as in production:

* Syslog and SNMP alerts carry an evident source ``device``;
* path-type alerts (Ping, INT) carry ``endpoints`` and at best a coarse
  ``location_hint``;
* frequencies vary from one datapoint per 2 s (Ping) to every 15 min
  (patrol inspection);
* delivery can lag observation (``delivered_at``), up to ~2 min for SNMP on
  CPU-starved devices (§4.2's rationale for the 5-minute node timeout).
"""

from __future__ import annotations

import abc
import dataclasses
import random
import zlib
from typing import Dict, List, Optional, Tuple

from ..simulation.clock import PeriodicSchedule
from ..simulation.state import NetworkState
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology


@dataclasses.dataclass(frozen=True)
class RawAlert:
    """One alert exactly as a monitoring tool reported it."""

    tool: str  # data-source name, e.g. "ping"
    raw_type: str  # tool-level category, e.g. "end_to_end_icmp_loss"
    timestamp: float  # when the underlying observation was made
    message: str = ""  # free-form payload (full log line for syslog)
    device: Optional[str] = None  # source device, when evident
    endpoints: Optional[Tuple[str, str]] = None  # for path-type alerts
    location_hint: Optional[LocationPath] = None  # coarse location, if any
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    delivered_at: float = -1.0  # when the collector received it

    def __post_init__(self) -> None:
        if self.delivered_at < 0:
            object.__setattr__(self, "delivered_at", self.timestamp)
        if self.delivered_at < self.timestamp:
            raise ValueError("an alert cannot be delivered before it is observed")

    def metric(self, name: str, default: float = 0.0) -> float:
        return float(self.metrics.get(name, default))


class Monitor(abc.ABC):
    """Base class for all monitoring tools.

    Subclasses implement :meth:`observe`, called once per elapsed period.
    ``collect`` catches up on every firing the simulation step covered so
    coarse ticks never silently skip a polling round.
    """

    #: Data-source name; must match ``registry.DATA_SOURCES`` keys.
    name: str = "monitor"
    #: Seconds between polling rounds.
    period_s: float = 30.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        self._state = state
        self._rng = random.Random(
            zlib.crc32(self.name.encode("utf-8")) ^ (seed * 2654435761 % 2**32)
        )
        # spread tools across the tick so they do not all fire at once
        offset = (zlib.crc32(self.name.encode("utf-8")) % 1000) / 1000.0
        self._schedule = PeriodicSchedule(self.period_s, offset=offset)

    @property
    def state(self) -> NetworkState:
        return self._state

    @property
    def topology(self) -> Topology:
        return self._state.topology

    def collect(self, now: float) -> List[RawAlert]:
        """All alerts produced by polling rounds due at or before ``now``."""
        alerts: List[RawAlert] = []
        for t in self._schedule.due(now):
            alerts.extend(self.observe(t))
        return alerts

    @abc.abstractmethod
    def observe(self, t: float) -> List[RawAlert]:
        """Run one polling round at simulated time ``t``."""

    # -- shared helpers -------------------------------------------------------

    def _alert(
        self,
        raw_type: str,
        t: float,
        message: str = "",
        device: Optional[str] = None,
        endpoints: Optional[Tuple[str, str]] = None,
        location_hint: Optional[LocationPath] = None,
        delay_s: float = 0.0,
        **metrics: float,
    ) -> RawAlert:
        return RawAlert(
            tool=self.name,
            raw_type=raw_type,
            timestamp=t,
            message=message or raw_type.replace("_", " "),
            device=device,
            endpoints=endpoints,
            location_hint=location_hint,
            metrics=metrics,
            delivered_at=t + max(0.0, delay_s),
        )
