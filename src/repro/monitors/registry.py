"""Data-source registry: Table 2's inventory and standard monitor set."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..simulation.state import NetworkState
from .base import Monitor
from .internet import InternetTelemetryMonitor
from .int_telemetry import IntTelemetryMonitor
from .modification import ModificationMonitor
from .oob import OutOfBandMonitor
from .patrol import PatrolInspectionMonitor
from .ping import PingMonitor
from .ptp import PtpMonitor
from .route import RouteMonitor
from .sflow import SflowMonitor
from .snmp import SnmpMonitor
from .syslog import SyslogMonitor
from .traceroute import TracerouteMonitor

#: Table 2: network monitoring tools used by SkyNet.
DATA_SOURCES: Dict[str, str] = {
    "ping": "Periodically records latency and reachability between pairs of servers",
    "traceroute": "Periodically records latency of each hop between pairs of servers",
    "out_of_band": "Periodically collects device liveness, CPU and RAM usage out-of-band",
    "traffic_statistics": "Data from traffic monitoring systems sFlow and NetFlow",
    "internet_telemetry": "Pings Internet addresses from DC servers",
    "syslog": "Errors detected by network devices",
    "snmp": "Interface status and counters, RX errors, CPU and RAM usage (SNMP & GRPC)",
    "in_band_telemetry": "Test packets comparing per-device input/output rates",
    "ptp": "System time of network devices out of synchronisation",
    "route_monitoring": "Loss of default/aggregate route, route hijack and leaking",
    "modification_events": "Failures of automatic or manual network modifications",
    "patrol_inspection": "Runs predefined commands on devices and collects results",
}

#: Table 2 polling cadence per source, plus documented delivery-delay
#: bounds (only SNMP has one: the §4.2 "approximately 2 minutes" lag on
#: CPU-starved legacy gear that sized the incident timeout).  REP010 in
#: ``repro.devtools.lint`` reads this dict from the AST and cross-checks
#: every monitor's ``period_s`` / ``*_DELAY_S`` literal against it, so a
#: cadence tweak must land here and in the monitor module together.
TABLE2_CADENCE: Dict[str, Dict[str, float]] = {
    "ping": {"period_s": 2.0},
    "traceroute": {"period_s": 30.0},
    "out_of_band": {"period_s": 30.0},
    "traffic_statistics": {"period_s": 60.0},
    "internet_telemetry": {"period_s": 10.0},
    "syslog": {"period_s": 5.0},
    "snmp": {"period_s": 30.0, "delivery_delay_s": 120.0},
    "in_band_telemetry": {"period_s": 15.0},
    "ptp": {"period_s": 60.0},
    "route_monitoring": {"period_s": 10.0},
    "modification_events": {"period_s": 10.0},
    "patrol_inspection": {"period_s": 900.0},  # lint: allow REP003 (Table 2 polling period, not the §4.2 incident timeout)
    "user_telemetry": {"period_s": 15.0},
    "srte_probe": {"period_s": 60.0},
}

MONITOR_CLASSES: Dict[str, Type[Monitor]] = {
    "ping": PingMonitor,
    "traceroute": TracerouteMonitor,
    "out_of_band": OutOfBandMonitor,
    "traffic_statistics": SflowMonitor,
    "internet_telemetry": InternetTelemetryMonitor,
    "syslog": SyslogMonitor,
    "snmp": SnmpMonitor,
    "in_band_telemetry": IntTelemetryMonitor,
    "ptp": PtpMonitor,
    "route_monitoring": RouteMonitor,
    "modification_events": ModificationMonitor,
    "patrol_inspection": PatrolInspectionMonitor,
}

#: Ascending failure-detection coverage, as measured by the Figure 3 bench.
#: The Figure 8a ablation removes sources in this order (low coverage first).
COVERAGE_ORDER: List[str] = [
    "ptp",
    "route_monitoring",
    "modification_events",
    "in_band_telemetry",
    "out_of_band",
    "traceroute",
    "syslog",
    "patrol_inspection",
    "ping",
    "internet_telemetry",
    "snmp",
    "traffic_statistics",
]


#: §9 future-work data sources, implemented but not part of the paper's
#: evaluated twelve.  Registering new levels in ``core.alert_types`` is all
#: SkyNet needs to ingest them (§5.2 extensibility).
FUTURE_SOURCES: Dict[str, str] = {
    "user_telemetry": "Telemetry packets from users' clients toward the DC",
    "srte_probe": "Label-based periodic link reachability verification (SRTE)",
}


def _future_classes() -> Dict[str, Type[Monitor]]:
    from .srte_probe import SrteProbeMonitor
    from .user_telemetry import UserTelemetryMonitor

    return {
        "user_telemetry": UserTelemetryMonitor,
        "srte_probe": SrteProbeMonitor,
    }


def build_monitors(
    state: NetworkState,
    include: Optional[Sequence[str]] = None,
    exclude: Sequence[str] = (),
    seed: int = 0,
    future_sources: bool = False,
) -> List[Monitor]:
    """Instantiate monitoring tools over ``state``.

    ``include=None`` builds all twelve; pass a name list to restrict (the
    coverage/ablation experiments), or ``exclude`` to drop a few.
    ``future_sources=True`` additionally builds the §9 future-work tools
    (user-side telemetry, SRTE label probing).
    """
    classes: Dict[str, Type[Monitor]] = dict(MONITOR_CLASSES)
    if future_sources or (
        include is not None and any(n in FUTURE_SOURCES for n in include)
    ):
        classes.update(_future_classes())
    names = (
        list(MONITOR_CLASSES) + (list(FUTURE_SOURCES) if future_sources else [])
        if include is None
        else list(include)
    )
    unknown = [n for n in names if n not in classes]
    if unknown:
        raise KeyError(f"unknown data sources: {unknown}")
    return [
        classes[name](state, seed=seed)
        for name in names
        if name not in set(exclude)
    ]
