"""Out-of-band monitoring: device liveness, CPU and RAM via the management
plane (Redfish/IPMI-style, Table 2).

Coverage profile (§2.1): "addresses predominantly infrastructure related
issues, focusing on device liveness, CPU utilization, temperature, etc." --
it sees a dead device instantly but is blind to forwarding-plane faults on
a live one.  A faulty probe (``PROBE_ERROR`` condition) spams false
"inaccessible" alerts, the §4.2 false-alarm example.
"""

from __future__ import annotations

from typing import List, Set

from ..simulation.conditions import ConditionKind
from .base import Monitor, RawAlert


class OutOfBandMonitor(Monitor):
    """Management-plane device health polling."""

    name = "out_of_band"
    period_s = 30.0

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        seen_down: Set[str] = set()
        for cond in self._state.active_conditions():
            device = cond.target if isinstance(cond.target, str) else None
            if device is None or not self.topology.has_device(device):
                continue
            if cond.kind is ConditionKind.DEVICE_DOWN and device not in seen_down:
                seen_down.add(device)
                alerts.append(
                    self._alert(
                        "inaccessible",
                        t,
                        message=f"device {device} is inaccessible",
                        device=device,
                    )
                )
            elif cond.kind is ConditionKind.PROBE_ERROR:
                # faulty probe: a burst of identical false down alerts
                for _ in range(3):
                    alerts.append(
                        self._alert(
                            "inaccessible",
                            t,
                            message=f"device {device} is inaccessible",
                            device=device,
                        )
                    )
            elif cond.kind is ConditionKind.DEVICE_HIGH_CPU:
                alerts.append(
                    self._alert(
                        "high_cpu",
                        t,
                        message=f"cpu {cond.param('utilization', 0.95):.0%} on {device}",
                        device=device,
                        utilization=cond.param("utilization", 0.95),
                    )
                )
            elif cond.kind is ConditionKind.DEVICE_HIGH_MEM:
                alerts.append(
                    self._alert(
                        "high_mem",
                        t,
                        message=f"memory {cond.param('utilization', 0.93):.0%} on {device}",
                        device=device,
                        utilization=cond.param("utilization", 0.93),
                    )
                )
        return alerts
