"""The twelve monitoring data sources of Table 2, simulated.

Each monitor observes :class:`~repro.simulation.state.NetworkState` with
realistic tool semantics -- polling frequency, location evidence, delivery
delay, and coverage blind spots (see each module's docstring).
"""

from .base import Monitor, RawAlert
from .internet import InternetTelemetryMonitor
from .int_telemetry import IntTelemetryMonitor
from .modification import ModificationMonitor
from .oob import OutOfBandMonitor
from .patrol import PatrolInspectionMonitor
from .ping import PingMonitor
from .ptp import PtpMonitor
from .registry import COVERAGE_ORDER, DATA_SOURCES, MONITOR_CLASSES, build_monitors
from .route import RouteMonitor
from .sflow import SflowMonitor
from .snmp import SnmpMonitor
from .stream import AlertStream
from .syslog import SyslogMonitor
from .traceroute import TracerouteMonitor

__all__ = [
    "AlertStream",
    "COVERAGE_ORDER",
    "DATA_SOURCES",
    "InternetTelemetryMonitor",
    "IntTelemetryMonitor",
    "MONITOR_CLASSES",
    "ModificationMonitor",
    "Monitor",
    "OutOfBandMonitor",
    "PatrolInspectionMonitor",
    "PingMonitor",
    "PtpMonitor",
    "RawAlert",
    "RouteMonitor",
    "SflowMonitor",
    "SnmpMonitor",
    "SyslogMonitor",
    "TracerouteMonitor",
    "build_monitors",
]
