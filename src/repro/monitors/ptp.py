"""PTP monitoring: device system clocks drifting out of synchronisation
(Table 2: "System time of network devices out of Synchronization")."""

from __future__ import annotations

from typing import List

from ..simulation.conditions import ConditionKind
from .base import Monitor, RawAlert

#: Clock offset worth alerting on, in microseconds.
DRIFT_ALERT_US = 50.0


class PtpMonitor(Monitor):
    """Clock-synchronisation checking, every 60 s."""

    name = "ptp"
    period_s = 60.0

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for cond in self._state.active_conditions(ConditionKind.DEVICE_CLOCK_DRIFT):
            drift = cond.param("drift_us", 80.0)
            if drift >= DRIFT_ALERT_US:
                device = str(cond.target)
                alerts.append(
                    self._alert(
                        "clock_unsync",
                        t,
                        message=f"system time of {device} off by {drift:.0f} us",
                        device=device,
                        drift_us=drift,
                    )
                )
        return alerts
