"""Route monitoring: loss of default/aggregate routes, hijacks and leaks
(Table 2).

Coverage profile (§2.1): "limited to the control plane and cannot diagnose
data plane issues" -- it is, however, the *only* tool that names a routing
root cause directly.
"""

from __future__ import annotations

from typing import Dict, List

from ..simulation.conditions import ConditionKind
from ..simulation.state import NetworkState
from .base import Monitor, RawAlert

_ROUTE_TYPES = {
    ConditionKind.ROUTE_LOSS: "default_route_loss",
    ConditionKind.ROUTE_LEAK: "route_leak",
    ConditionKind.ROUTE_HIJACK: "route_hijack",
}
#: While a routing fault persists the monitor re-reports it this often.
REEMIT_PERIOD_S = 60.0


class RouteMonitor(Monitor):
    """Control-plane watching, every 10 s."""

    name = "route_monitoring"
    period_s = 10.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._last_emit: Dict[str, float] = {}

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for cond in self._state.active_conditions():
            raw_type = _ROUTE_TYPES.get(cond.kind)
            if raw_type is None:
                continue
            last = self._last_emit.get(cond.condition_id)
            if last is not None and t - last < REEMIT_PERIOD_S:
                continue
            self._last_emit[cond.condition_id] = t
            device = str(cond.target)
            alerts.append(
                self._alert(
                    raw_type,
                    t,
                    message=f"{raw_type.replace('_', ' ')} observed at {device}",
                    device=device,
                )
            )
        return alerts
