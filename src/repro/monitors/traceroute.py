"""Traceroute statistics: per-hop latency/loss on sampled paths.

Walks a sampled subset of the ping mesh every 30 s and, when a path loses
packets, attributes the loss to the first faulty hop it can see.

Coverage profile (§2.1): "loses effectiveness in networks with asymmetric
paths or when tunnels such as SRTE are employed" -- modelled as hop
attribution only working on paths contained within one logic site; wider
paths (which production carries in SRTE tunnels) yield only an
unattributed path alert.
"""

from __future__ import annotations

from typing import List

from ..simulation.state import NetworkState
from ..topology.hierarchy import Level
from .base import Monitor, RawAlert
from .ping import LOSS_ALERT_THRESHOLD
from .ping import PingMonitor


class TracerouteMonitor(Monitor):
    """Hop-by-hop probing over a thinned ping mesh."""

    name = "traceroute"
    period_s = 30.0
    #: keep every Nth ping pair to bound probe load
    sample_stride = 3

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        mesh = PingMonitor(state, seed).probe_pairs
        self._pairs = mesh[:: self.sample_stride]

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        topo = self.topology
        for src, dst in self._pairs:
            route, loss = self._state.pair_loss(src, dst)
            if loss < LOSS_ALERT_THRESHOLD:
                continue
            src_ls = topo.servers[src].cluster.truncate(Level.LOGIC_SITE)
            dst_ls = topo.servers[dst].cluster.truncate(Level.LOGIC_SITE)
            culprit = None
            if route.reachable and src_ls == dst_ls:
                # single-site path: hop attribution works
                for dev in route.devices:
                    if self._state.device_loss_rate(dev) > 0 or not self._state.device_up(dev):
                        culprit = dev
                        break
                if culprit is None:
                    for i, set_id in enumerate(route.circuit_sets):
                        if self._state.circuit_set_loss_rate(set_id) > 0:
                            culprit = route.devices[min(i, len(route.devices) - 1)]
                            break
            if culprit is not None:
                alerts.append(
                    self._alert(
                        "hop_loss",
                        t,
                        message=f"loss at hop {culprit} on {src}->{dst}",
                        device=culprit,
                        endpoints=(src, dst),
                        loss_rate=loss,
                    )
                )
            else:
                # unattributed (tunnelled/asymmetric) path: the alert is
                # about the path as a whole, so it carries the endpoints'
                # common ancestor rather than implicating either end
                alerts.append(
                    self._alert(
                        "path_loss",
                        t,
                        message=f"lossy path {src}->{dst} (unattributed)",
                        endpoints=(src, dst),
                        location_hint=src_ls.common_ancestor(dst_ls),
                        loss_rate=loss,
                    )
                )
        return alerts
