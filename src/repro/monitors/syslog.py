"""Syslog collection: vendor-style log lines from network devices.

This is the highest-volume, least-structured source (production: ~10M
entries / 15 min, §2.3).  Lines are templated vendor messages with variable
fields (interfaces, IPs, counters); SkyNet classifies them into alert types
with FT-tree templates (§4.1), so realistic token structure matters here.

Coverage profile (§2.1): "Syslog cannot address routing errors that do not
trigger runtime errors on a device" -- CONFIG_ERROR, ROUTE_* and
DEVICE_SILENT_LOSS conditions produce **no** syslog.  A dead device cannot
log either: its *neighbours* report the fallout (interface down, BGP peer
loss), which is exactly how real floods look.

The §7.3 delayed-root-cause behaviour is honoured: a condition with a
``syslog_delay_s`` param only becomes log-visible that many seconds after
it starts.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from ..simulation.conditions import Condition, ConditionKind
from ..simulation.state import NetworkState
from .base import Monitor, RawAlert


def interface_name(device: str, peer: str) -> str:
    """Deterministic pseudo interface for the device's side of a link."""
    h = zlib.crc32(f"{device}>{peer}".encode())
    return f"TenGigE0/{h % 4}/0/{h % 48}"


def pseudo_ip(device: str) -> str:
    h = zlib.crc32(device.encode())
    return f"10.{(h >> 16) & 255}.{(h >> 8) & 255}.{h & 255}"


#: Conditions syslog can see at all, with (template key, re-emit period s).
#: ``None`` period means the line is logged once per condition.
_VISIBLE: Dict[ConditionKind, Tuple[str, Optional[float]]] = {
    ConditionKind.DEVICE_HARDWARE_ERROR: ("hardware_error", 60.0),
    ConditionKind.DEVICE_SOFTWARE_ERROR: ("software_error", 30.0),
    ConditionKind.DEVICE_HIGH_MEM: ("out_of_memory", 60.0),
    ConditionKind.DEVICE_UNBALANCED_HASH: ("bgp_link_jitter", 15.0),
    ConditionKind.LINK_CRC_ERRORS: ("crc_errors", 15.0),
    ConditionKind.LINK_FLAPPING: ("link_flapping", 5.0),
}


class SyslogMonitor(Monitor):
    """Collects device logs every 5 seconds."""

    name = "syslog"
    period_s = 5.0
    #: benign chatter lines per device per poll (corpus realism / FT-tree food)
    chatter_rate = 0.01

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._burst_logged: Set[str] = set()  # condition ids already burst-logged
        self._last_emit: Dict[Tuple[str, str], float] = {}

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        topo = self.topology
        for cond in self._state.active_conditions():
            if t < cond.start + cond.param("syslog_delay_s", 0.0):
                continue
            if cond.kind is ConditionKind.DEVICE_DOWN:
                alerts.extend(self._neighbour_fallout(cond, t))
            elif cond.kind is ConditionKind.CIRCUIT_BREAK:
                alerts.extend(self._circuit_break_logs(cond, t))
            elif cond.kind in _VISIBLE:
                alerts.extend(self._condition_logs(cond, t))
        alerts.extend(self._chatter(t))
        return alerts

    # -- per-kind log production -------------------------------------------------

    def _neighbour_fallout(self, cond: Condition, t: float) -> List[RawAlert]:
        """Neighbours of a dead device log interface and BGP-peer loss."""
        if cond.condition_id in self._burst_logged:
            return []
        self._burst_logged.add(cond.condition_id)
        dead = cond.target
        alerts: List[RawAlert] = []
        for nbr in self.topology.neighbors(str(dead)):
            iface = interface_name(nbr, str(dead))
            alerts.append(self._log(nbr, t,
                f"%LINEPROTO-5-UPDOWN: Line protocol on Interface {iface}, "
                f"changed state to down"))
            alerts.append(self._log(nbr, t,
                f"%LINK-3-UPDOWN: Interface {iface}, changed state to down"))
            alerts.append(self._log(nbr, t,
                f"%BGP-5-ADJCHANGE: neighbor {pseudo_ip(str(dead))} Down - "
                f"holdtimer expired"))
        return alerts

    def _circuit_break_logs(self, cond: Condition, t: float) -> List[RawAlert]:
        """Both endpoints log a port-down line per broken circuit, once."""
        if cond.condition_id in self._burst_logged:
            return []
        self._burst_logged.add(cond.condition_id)
        topo = self.topology
        cs = topo.circuit_sets.get(str(cond.target))
        if cs is None:
            return []
        broken = int(cond.param("broken_circuits", len(cs.circuits)))
        alerts: List[RawAlert] = []
        from ..topology.network import INTERNET

        for end in cs.endpoints:
            if end == INTERNET:
                continue
            peer = cs.other_end(end)
            for i in range(min(broken, len(cs.circuits))):
                iface = interface_name(end, f"{peer}#{i}")
                alerts.append(self._log(end, t,
                    f"%LINK-3-UPDOWN: Interface {iface}, changed state to down"))
                alerts.append(self._log(end, t,
                    f"%PORT-5-IF_DOWN_LINK_FAILURE: Interface {iface} is down "
                    f"(Link failure)"))
            if broken >= len(cs.circuits):
                alerts.append(self._log(end, t,
                    f"%BGP-5-ADJCHANGE: neighbor {pseudo_ip(str(peer))} Down - "
                    f"interface flap"))
        return alerts

    def _condition_logs(self, cond: Condition, t: float) -> List[RawAlert]:
        key, period = _VISIBLE[cond.kind]
        last = self._last_emit.get((cond.condition_id, key))
        if last is not None and (period is None or t - last < period):
            return []
        self._last_emit[(cond.condition_id, key)] = t
        target = str(cond.target)
        topo = self.topology
        if cond.kind in (ConditionKind.LINK_CRC_ERRORS, ConditionKind.LINK_FLAPPING):
            cs = topo.circuit_sets.get(target)
            if cs is None:
                return []
            from ..topology.network import INTERNET

            ends = [e for e in cs.endpoints if e != INTERNET]
            alerts: List[RawAlert] = []
            for end in ends:
                iface = interface_name(end, cs.other_end(end))
                if cond.kind is ConditionKind.LINK_CRC_ERRORS:
                    count = int(1000 * cond.param("corruption_rate", 0.02)) + 17
                    alerts.append(self._log(end, t,
                        f"%PKT_INFRA-3-CRC_ERROR: {count} CRC errors detected "
                        f"on interface {iface}"))
                else:
                    alerts.append(self._log(end, t,
                        f"%LINK-3-UPDOWN: Interface {iface}, changed state to down"))
                    alerts.append(self._log(end, t,
                        f"%LINK-3-UPDOWN: Interface {iface}, changed state to up"))
            return alerts
        if cond.kind is ConditionKind.DEVICE_HARDWARE_ERROR:
            slot = zlib.crc32(target.encode()) % 8
            return [self._log(target, t,
                f"%PLATFORM-2-HARDWARE_FAULT: ASIC {slot} parity error detected, "
                f"packets may be dropped")]
        if cond.kind is ConditionKind.DEVICE_SOFTWARE_ERROR:
            return [
                self._log(target, t,
                    "%OS-2-PROCESS_CRASH: Process bgpd exited unexpectedly, "
                    "restart scheduled"),
                self._log(target, t,
                    f"%BGP-5-ADJCHANGE: neighbor {pseudo_ip(target + 'peer')} Down - "
                    f"peer closed the session"),
            ]
        if cond.kind is ConditionKind.DEVICE_HIGH_MEM:
            return [self._log(target, t,
                f"%SYS-2-MALLOCFAIL: Memory allocation of {4096 + zlib.crc32(target.encode()) % 8192} "
                f"bytes failed, out of memory")]
        if cond.kind is ConditionKind.DEVICE_UNBALANCED_HASH:
            session = zlib.crc32(target.encode()) % 64
            return [self._log(target, t,
                f"%BGP-4-SESSION_JITTER: BGP link jitter detected on session "
                f"eBGP-{session}")]
        return []

    def _chatter(self, t: float) -> List[RawAlert]:
        """Low-rate benign lines: logins, config sessions, SNMP writes."""
        devices = sorted(self.topology.devices)
        mean = len(devices) * self.chatter_rate
        count = 0
        # cheap Poisson-ish draw
        while self._rng.random() < mean - count and count < 10:
            count += 1
        templates = (
            "%SEC_LOGIN-6-LOGIN_SUCCESS: Login Success [user: ops{}] at vty0",
            "%SYS-5-CONFIG_I: Configured from console by ops{} on vty1",
            "%SSH-6-SESSION: SSH session from 172.16.{}.{} established",
        )
        alerts: List[RawAlert] = []
        for _ in range(count):
            device = self._rng.choice(devices)
            tpl = self._rng.choice(templates)
            line = tpl.format(self._rng.randint(1, 99), self._rng.randint(1, 250))
            alerts.append(self._log(device, t, line))
        return alerts

    def _log(self, device: str, t: float, line: str) -> RawAlert:
        # raw carrier type: FT-tree templates in repro.syslogproc classify
        # each line into a registered ("syslog", <template>) key before the
        # level lookup ever sees it
        return self._alert("log", t, message=line, device=device)  # lint: allow REP009
