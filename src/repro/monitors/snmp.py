"""SNMP & GRPC counter polling: interface status, traffic rates, RX errors,
CPU/RAM (Table 2).

Coverage profile (§2.1): "collects only information available within the
SNMP protocol constraints" -- interface state and counters, but nothing
about end-to-end behaviour.  On CPU-starved legacy devices, delivery lags
observation by up to ~2 minutes (§4.2), the very delay that sized SkyNet's
5-minute node timeout.  A fifth of devices are "old" here (deterministic by
name hash).
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from ..simulation.conditions import ConditionKind
from ..simulation.state import NetworkState
from ..topology.network import INTERNET
from .base import Monitor, RawAlert

#: Circuit-set utilisation above this raises a congestion alert.
CONGESTION_THRESHOLD = 0.9
#: A delivered rate below this fraction of baseline is a sharp traffic drop.
TRAFFIC_DROP_FRACTION = 0.5
#: Rate above this multiple of baseline is a traffic surge.
TRAFFIC_SURGE_FACTOR = 2.0
#: Ignore rate anomalies on sets carrying less than this at baseline.
MIN_BASELINE_GBPS = 0.5
#: Fraction of devices that are CPU-starved legacy gear with delayed delivery.
OLD_DEVICE_FRACTION = 0.2
#: Maximum delivery delay on old devices (paper: "approximately 2 minutes").
MAX_OLD_DEVICE_DELAY_S = 120.0


def is_old_device(name: str) -> bool:
    return (zlib.crc32(name.encode()) % 100) < OLD_DEVICE_FRACTION * 100


def device_delay(name: str) -> float:
    """Deterministic delivery delay for a device's counters."""
    if not is_old_device(name):
        return 0.0
    return 30.0 + (zlib.crc32(name.encode()) % int(MAX_OLD_DEVICE_DELAY_S - 30))


class SnmpMonitor(Monitor):
    """Interface/counter polling over every device, every 30 s."""

    name = "snmp"
    period_s = 30.0

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        alerts.extend(self._interface_alerts(t))
        alerts.extend(self._rate_alerts(t))
        alerts.extend(self._device_counter_alerts(t))
        return alerts

    # -- interface state ---------------------------------------------------------

    def _interface_alerts(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        topo = self.topology
        for cond in self._state.active_conditions():
            if cond.kind is ConditionKind.CIRCUIT_BREAK:
                cs = topo.circuit_sets.get(str(cond.target))
                if cs is None:
                    continue
                broken = int(cond.param("broken_circuits", len(cs.circuits)))
                for end in cs.endpoints:
                    if end == INTERNET:
                        continue
                    if broken >= len(cs.circuits):
                        alerts.append(self._counter(end, t, "link_down",
                            f"ifOperStatus down for all links toward {cs.other_end(end)}"))
                    else:
                        alerts.append(self._counter(end, t, "port_down",
                            f"{broken} ports down toward {cs.other_end(end)}",
                            ports_down=float(broken)))
            elif cond.kind is ConditionKind.LINK_CRC_ERRORS:
                cs = topo.circuit_sets.get(str(cond.target))
                if cs is None:
                    continue
                for end in cs.endpoints:
                    if end != INTERNET:
                        alerts.append(self._counter(end, t, "rx_errors",
                            f"input errors increasing toward {cs.other_end(end)}",
                            error_rate=cond.param("corruption_rate", 0.02)))
            elif cond.kind is ConditionKind.DEVICE_DOWN:
                device = str(cond.target)
                if self.topology.has_device(device):
                    alerts.append(self._counter(device, t, "snmp_timeout",
                        "SNMP agent not responding", delay_override=0.0))
        return alerts

    # -- traffic rates -------------------------------------------------------------

    def _rate_alerts(self, t: float) -> List[RawAlert]:
        """Congestion / sharp drop / surge against the all-healthy baseline."""
        alerts: List[RawAlert] = []
        state = self._state
        topo = self.topology
        for set_id, cs in topo.circuit_sets.items():
            baseline = state.baseline_load_gbps(set_id)
            if baseline < MIN_BASELINE_GBPS:
                continue
            device = cs.device_a if cs.device_a != INTERNET else cs.device_b
            rate = state.delivered_rate_gbps(set_id)
            utilization = state.utilization(set_id)
            if utilization > CONGESTION_THRESHOLD:
                alerts.append(self._counter(device, t, "traffic_congestion",
                    f"utilisation {min(utilization, 9.99):.0%} toward {cs.other_end(device)}",
                    utilization=min(utilization, 10.0)))
            if rate < baseline * TRAFFIC_DROP_FRACTION:
                alerts.append(self._counter(device, t, "traffic_drop",
                    f"rate {rate:.1f} Gbps vs baseline {baseline:.1f} Gbps "
                    f"toward {cs.other_end(device)}",
                    rate_gbps=rate, baseline_gbps=baseline))
            elif rate > baseline * TRAFFIC_SURGE_FACTOR:
                alerts.append(self._counter(device, t, "traffic_surge",
                    f"rate {rate:.1f} Gbps vs baseline {baseline:.1f} Gbps "
                    f"toward {cs.other_end(device)}",
                    rate_gbps=rate, baseline_gbps=baseline))
        return alerts

    # -- device counters --------------------------------------------------------------

    def _device_counter_alerts(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for cond in self._state.active_conditions():
            device = str(cond.target)
            if not isinstance(cond.target, str) or not self.topology.has_device(device):
                continue
            if cond.kind is ConditionKind.DEVICE_HIGH_CPU:
                alerts.append(self._counter(device, t, "high_cpu",
                    f"cpu {cond.param('utilization', 0.95):.0%}",
                    utilization=cond.param("utilization", 0.95)))
            elif cond.kind is ConditionKind.DEVICE_HIGH_MEM:
                alerts.append(self._counter(device, t, "high_mem",
                    f"memory {cond.param('utilization', 0.93):.0%}",
                    utilization=cond.param("utilization", 0.93)))
        return alerts

    def _counter(self, device: str, t: float, raw_type: str, message: str,
                 delay_override: float = -1.0, **metrics: float) -> RawAlert:
        delay = device_delay(device) if delay_override < 0 else delay_override
        return self._alert(raw_type, t, message=f"{device}: {message}",
                           device=device, delay_s=delay, **metrics)
