"""Traffic statistics from sFlow/NetFlow sampling (Table 2).

sFlow samples packets inside the fabric, so unlike Ping it can attribute
loss to specific devices: "the sFlow detects packet loss, with all affected
devices tracing back to a node within the incident tree" (§4.3).  It also
reports the loss *ratio* (normalised by traffic volume, §4.3 bullet 1) and
flags abnormal rate swings.
"""

from __future__ import annotations

from typing import List, Set

from ..simulation.state import NetworkState
from ..topology.network import INTERNET
from .base import Monitor, RawAlert

#: Device-level sampled loss ratio worth alerting on.
LOSS_RATIO_THRESHOLD = 0.01
#: Rate-change fraction that counts as an abnormal swing.
SWING_FRACTION = 0.5
MIN_BASELINE_GBPS = 0.5


class SflowMonitor(Monitor):
    """Sampled flow statistics, aggregated every 60 s."""

    name = "traffic_statistics"
    period_s = 60.0

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        state = self._state
        topo = self.topology
        # device-attributed loss from sampled flows
        seen: Set[str] = set()
        for cond in state.active_conditions():
            device = cond.target if isinstance(cond.target, str) else None
            if device is None or device in seen or not topo.has_device(device):
                continue
            loss = state.device_loss_rate(device)
            if loss >= LOSS_RATIO_THRESHOLD and self._carries_traffic(device):
                seen.add(device)
                alerts.append(
                    self._alert(
                        "packet_loss",
                        t,
                        message=f"sampled loss ratio {loss:.1%} at {device}",
                        device=device,
                        loss_ratio=loss,
                    )
                )
        # congestion loss attributed to both endpoints of the congested set
        for set_id, cs in topo.circuit_sets.items():
            loss = state.congestion_loss(set_id)
            if loss < LOSS_RATIO_THRESHOLD:
                continue
            for end in cs.endpoints:
                if end != INTERNET and end not in seen:
                    seen.add(end)
                    alerts.append(
                        self._alert(
                            "packet_loss",
                            t,
                            message=f"sampled loss ratio {loss:.1%} at {end} "
                                    f"(congested link toward {cs.other_end(end)})",
                            device=end,
                            loss_ratio=loss,
                        )
                    )
        # abnormal rate swings vs baseline
        for set_id, cs in topo.circuit_sets.items():
            baseline = state.baseline_load_gbps(set_id)
            if baseline < MIN_BASELINE_GBPS:
                continue
            rate = state.delivered_rate_gbps(set_id)
            device = cs.device_a if cs.device_a != INTERNET else cs.device_b
            if abs(rate - baseline) > baseline * SWING_FRACTION:
                direction = "drop" if rate < baseline else "surge"
                alerts.append(
                    self._alert(
                        f"flow_rate_{direction}",
                        t,
                        message=f"flow rate {rate:.1f} Gbps vs baseline "
                                f"{baseline:.1f} Gbps toward {cs.other_end(device)}",
                        device=device,
                        rate_gbps=rate,
                        baseline_gbps=baseline,
                    )
                )
        return alerts

    def _carries_traffic(self, device: str) -> bool:
        """sFlow only sees devices its sampled flows actually cross."""
        for cs in self.topology.circuit_sets_of(device):
            if self._state.baseline_load_gbps(cs.set_id) > 0:
                return True
        return False
