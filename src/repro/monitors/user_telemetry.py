"""User-side telemetry: §9 future work, implemented.

"we are currently integrating additional network monitoring data sources,
such as user-side telemetry, which transmits telemetry packets from users'
clients to the data center."

Synthetic user clients sit on the Internet and probe *into* each logic
site's entrance -- the mirror image of ``internet_telemetry``.  Because it
measures the inbound direction, it is the first tool to see entrance
trouble that only affects traffic coming *toward* the data center.

The alerts use the standard raw format, so once the type levels are
registered SkyNet ingests them without code changes (§5.2: "the alerts
raised by these tools can be simply injected into SkyNet").
"""

from __future__ import annotations

from typing import List, Tuple

from ..simulation.state import NetworkState
from ..topology.hierarchy import Level, LocationPath
from .base import Monitor, RawAlert

LOSS_ALERT_THRESHOLD = 0.01


class UserTelemetryMonitor(Monitor):
    """Inbound probing from simulated user clients, every 15 s."""

    name = "user_telemetry"
    period_s = 15.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        # one synthetic client population per logic site entrance, probing
        # a representative server behind it
        self._targets: List[Tuple[LocationPath, LocationPath, str]] = []
        for loc in self.topology.locations():
            if loc.level is Level.CLUSTER:
                servers = self.topology.servers_in(loc)
                if servers:
                    logic_site = loc.truncate(Level.LOGIC_SITE)
                    self._targets.append((logic_site, loc, servers[0].name))

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for logic_site, cluster, server in self._targets:
            # inbound path == reverse of the outbound entrance route
            route, loss = self._state.internet_loss(server)
            if loss >= 0.999:
                alerts.append(
                    self._alert(
                        "user_unreachable",
                        t,
                        message=f"user clients cannot reach {server}",
                        location_hint=cluster,
                        loss_rate=1.0,
                    )
                )
            elif loss >= LOSS_ALERT_THRESHOLD:
                alerts.append(
                    self._alert(
                        "user_packet_loss",
                        t,
                        message=f"user-side loss {loss:.1%} toward {server}",
                        location_hint=cluster,
                        loss_rate=loss,
                    )
                )
        return alerts
