"""In-band network telemetry: test packets with designated DSCP values whose
per-device input/output rates are compared (§4.3, Table 2).

INT pinpoints loss at the exact device -- including *silent* loss that never
reaches syslog -- but "is not universally supported across all devices"
(§2.1): only modern cluster switches and site aggregation routers speak it
here, so faults in the WAN core are invisible to this tool.
"""

from __future__ import annotations

from typing import List, Set

from ..simulation.state import NetworkState
from ..topology.network import DeviceRole
from .base import Monitor, RawAlert
from .ping import PingMonitor

#: Device roles with INT support (modern gear only).
SUPPORTED_ROLES = frozenset({DeviceRole.CLUSTER_SWITCH, DeviceRole.SITE_AGGREGATION})
#: In/out rate mismatch fraction that raises an alert.
MISMATCH_THRESHOLD = 0.005
#: keep every Nth mesh pair as a test-flow path
SAMPLE_STRIDE = 2


class IntTelemetryMonitor(Monitor):
    """Test-flow rate comparison across INT-capable devices."""

    name = "in_band_telemetry"
    period_s = 15.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._pairs = PingMonitor(state, seed).probe_pairs[::SAMPLE_STRIDE]
        self._supported: Set[str] = {
            d.name
            for d in self.topology.devices.values()
            if d.role in SUPPORTED_ROLES
        }

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        reported: Set[str] = set()
        for src, dst in self._pairs:
            route, _ = self._state.pair_loss(src, dst)
            if not route.reachable:
                continue
            for device in route.devices:
                if device in reported or device not in self._supported:
                    continue
                mismatch = self._state.device_loss_rate(device)
                if mismatch >= MISMATCH_THRESHOLD:
                    reported.add(device)
                    alerts.append(
                        self._alert(
                            "rate_mismatch",
                            t,
                            message=f"test flow in/out mismatch {mismatch:.1%} "
                                    f"at {device}",
                            device=device,
                            endpoints=(src, dst),
                            mismatch=mismatch,
                        )
                    )
        return alerts
