"""Internet telemetry: probing public addresses from data-center servers
(Table 2: "a monitoring system that ping Internet addresses from DC
servers").

One representative server per cluster probes out through the logic site's
Internet entrance every 10 s.  This is the tool that sees the §2.2
entrance-cable scenario end to end -- loss of Internet reachability or
heavy loss on the egress path -- regardless of which device is at fault.
"""

from __future__ import annotations

from typing import List, Tuple

from ..simulation.state import NetworkState
from ..topology.hierarchy import Level, LocationPath
from .base import Monitor, RawAlert

LOSS_ALERT_THRESHOLD = 0.01


class InternetTelemetryMonitor(Monitor):
    """Per-cluster probing of Internet reachability."""

    name = "internet_telemetry"
    period_s = 10.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._probes: List[Tuple[LocationPath, str]] = []
        for loc in self.topology.locations():
            if loc.level is Level.CLUSTER:
                servers = self.topology.servers_in(loc)
                if servers:
                    self._probes.append((loc, servers[0].name))

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for cluster, server in self._probes:
            route, loss = self._state.internet_loss(server)
            if loss >= 0.999:
                alerts.append(
                    self._alert(
                        "internet_unreachable",
                        t,
                        message=f"internet unreachable from {server}",
                        location_hint=cluster,
                        loss_rate=1.0,
                    )
                )
            elif loss >= LOSS_ALERT_THRESHOLD:
                alerts.append(
                    self._alert(
                        "internet_packet_loss",
                        t,
                        message=f"internet loss {loss:.1%} from {server}",
                        location_hint=cluster,
                        loss_rate=loss,
                    )
                )
        return alerts
