"""Patrol inspection: periodically running predefined commands on devices
and parsing the output (Table 2).

Broad but slow -- a 15-minute sweep that can surface faults other tools
miss (notably configuration errors sitting silently in ``show`` output),
at the cost of detection latency far above the minute-level SLA.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..simulation.conditions import ConditionKind
from .base import Monitor, RawAlert

#: Faults whose traces appear in command output during a patrol sweep.
PATROL_VISIBLE = frozenset(
    {
        ConditionKind.DEVICE_HARDWARE_ERROR,
        ConditionKind.DEVICE_SOFTWARE_ERROR,
        ConditionKind.CONFIG_ERROR,
        ConditionKind.DEVICE_HIGH_CPU,
        ConditionKind.DEVICE_HIGH_MEM,
        ConditionKind.ROUTE_LOSS,
    }
)


class PatrolInspectionMonitor(Monitor):
    """Command-output sweep across all devices, every 15 minutes."""

    name = "patrol_inspection"
    period_s = 900.0  # lint: allow REP003 (Table 2 polling period, not the §4.2 incident timeout)

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        seen: Set[Tuple[str, ConditionKind]] = set()
        for cond in self._state.active_conditions():
            if cond.kind not in PATROL_VISIBLE:
                continue
            device = str(cond.target)
            key = (device, cond.kind)
            if key in seen or not self.topology.has_device(device):
                continue
            seen.add(key)
            alerts.append(
                self._alert(
                    "patrol_anomaly",
                    t,
                    message=f"patrol command output anomaly on {device}: "
                            f"{cond.kind.value}",
                    device=device,
                )
            )
        return alerts
