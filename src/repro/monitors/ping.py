"""Ping statistics: end-to-end probing between server pairs (Pingmesh-style).

Probes a hierarchical mesh -- every cluster pair inside each logic site plus
a representative mesh across logic sites -- every 2 seconds (§4.1: "Ping
outputs one data point every 2 seconds").  Emits packet-loss alerts in three
flavours (ICMP / TCP / source-routed, as in Figure 6) and high-latency
alerts when queueing delay climbs.

Coverage profile (§2.1): sees anything that hurts end-to-end reachability
or latency, but cannot name the culprit device and misses partial-redundancy
link breaks that do not yet cause loss.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from ..simulation.state import NetworkState
from ..topology.hierarchy import Level, LocationPath
from .base import Monitor, RawAlert

#: Loss below this is considered probe noise and not alerted on.
LOSS_ALERT_THRESHOLD = 0.01
#: Round-trip latency above this raises a high-latency alert.
LATENCY_ALERT_MS = 8.0
#: A cluster is a loss suspect when at least this fraction of its probe
#: pairs are lossy in one round.
SUSPECT_FRACTION = 0.5

_FLAVOURS = ("end_to_end_icmp", "end_to_end_tcp", "end_to_end_source")


class PingMonitor(Monitor):
    """End-to-end reachability/latency probing over a fixed pair mesh."""

    name = "ping"
    period_s = 2.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._pairs = self._build_mesh()
        self._pair_count: Dict[LocationPath, int] = {}
        for src, dst in self._pairs:
            for server in (src, dst):
                cluster = self.topology.servers[server].cluster
                self._pair_count[cluster] = self._pair_count.get(cluster, 0) + 1

    @property
    def probe_pairs(self) -> List[Tuple[str, str]]:
        return list(self._pairs)

    def _build_mesh(self) -> List[Tuple[str, str]]:
        """Cluster-pair mesh: full within each logic site, representative across.

        The probing server for each side of a pair is hash-picked among the
        cluster's servers so the mesh spreads across every cluster switch --
        a fault on any one switch degrades some probe paths (pingmesh
        deliberately diversifies endpoints the same way).
        """
        topo = self.topology
        clusters_by_ls: Dict[LocationPath, List[LocationPath]] = {}
        for loc in topo.locations():
            if loc.level is Level.CLUSTER and topo.servers_in(loc):
                clusters_by_ls.setdefault(loc.truncate(Level.LOGIC_SITE), []).append(loc)
        pairs: List[Tuple[str, str]] = []

        def representative(cluster: LocationPath, peer: LocationPath) -> str:
            servers = topo.servers_in(cluster)
            pick = zlib.crc32(f"{cluster}~{peer}".encode()) % len(servers)
            return servers[pick].name

        for clusters in clusters_by_ls.values():
            clusters.sort(key=str)
            for i in range(len(clusters)):
                for j in range(i + 1, len(clusters)):
                    a, b = clusters[i], clusters[j]
                    pairs.append((representative(a, b), representative(b, a)))
        reps = [clusters[0] for clusters in clusters_by_ls.values() if clusters]
        reps.sort(key=str)
        for i in range(len(reps)):
            for j in range(i + 1, len(reps)):
                a, b = reps[i], reps[j]
                pairs.append((representative(a, b), representative(b, a)))
        return pairs

    def observe(self, t: float) -> List[RawAlert]:
        """One probing round, with pingmesh-style loss attribution.

        The tool first measures every pair, then blames each lossy pair on
        the side(s) whose pairs are *mostly* lossy this round -- the basic
        tomography step production ping analyses perform (§4.1: "the ping
        tool reports packet loss alerts for the affected link").  A cluster
        with one lossy pair toward a dying peer is a bystander, not a
        suspect; when neither side stands out, both are reported.
        """
        alerts: List[RawAlert] = []
        lossy: List[Tuple[str, str, float, LocationPath, LocationPath]] = []
        lossy_count: Dict[LocationPath, int] = {}
        for src, dst in self._pairs:
            route, loss = self._state.pair_loss(src, dst)
            if loss >= LOSS_ALERT_THRESHOLD:
                ca = self.topology.servers[src].cluster
                cb = self.topology.servers[dst].cluster
                lossy.append((src, dst, loss, ca, cb))
                lossy_count[ca] = lossy_count.get(ca, 0) + 1
                lossy_count[cb] = lossy_count.get(cb, 0) + 1
                continue  # an unreachable pair has no meaningful latency
            latency = self._state.route_latency_ms(route)
            if latency > LATENCY_ALERT_MS:
                alerts.append(
                    self._alert(
                        "high_latency",
                        t,
                        message=f"rtt {latency:.1f} ms from {src} to {dst}",
                        endpoints=(src, dst),
                        latency_ms=latency,
                    )
                )
        for src, dst, loss, ca, cb in lossy:
            suspects = [
                c
                for c in (ca, cb)
                if lossy_count[c] >= self._pair_count[c] * SUSPECT_FRACTION
            ]
            flavour = _FLAVOURS[zlib.crc32(f"{src}|{dst}".encode()) % len(_FLAVOURS)]
            for blamed in suspects or [ca, cb]:
                alerts.append(
                    self._alert(
                        f"{flavour}_loss",
                        t,
                        message=f"packet loss {loss:.1%} from {src} to {dst}",
                        endpoints=(src, dst),
                        location_hint=blamed,
                        loss_rate=loss,
                    )
                )
        return alerts
