"""Modification events: outcomes of network changes, automatic or manual
(Table 2: "Failure of network modification triggered automatically or
manually").

Successful scheduled changes are reported too -- they are part of the
benign chatter the preprocessor must not let drown real failures (§1:
"alerts triggered by ... scheduled updates occurring concurrently").
"""

from __future__ import annotations

from typing import List, Set

from ..simulation.conditions import ConditionKind
from ..simulation.state import NetworkState
from .base import Monitor, RawAlert


class ModificationMonitor(Monitor):
    """Change-management event feed, checked every 10 s."""

    name = "modification_events"
    period_s = 10.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._reported: Set[str] = set()

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for cond in self._state.active_conditions():
            if cond.condition_id in self._reported:
                continue
            if cond.kind is ConditionKind.MODIFICATION_FAILED:
                self._reported.add(cond.condition_id)
                device = str(cond.target)
                alerts.append(
                    self._alert(
                        "modification_failed",
                        t,
                        message=f"network modification on {device} failed "
                                f"verification, rollback prepared",
                        device=device,
                    )
                )
            elif cond.kind is ConditionKind.MODIFICATION_OK:
                self._reported.add(cond.condition_id)
                device = str(cond.target)
                alerts.append(
                    self._alert(
                        "modification_event",
                        t,
                        message=f"scheduled modification executing on {device}",
                        device=device,
                    )
                )
        return alerts
