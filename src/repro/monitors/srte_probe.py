"""SRTE label-based link testing: §9 future work, implemented.

"For our newly designed SRTE network, we are utilizing a label-based
testing tool to periodically verify link reachability."

Where traceroute goes blind inside segment-routed tunnels (§2.1), a
label-steered probe pins its path to one specific circuit set, so a
failed verification names the link directly -- root-cause-grade evidence
for exactly the class of faults the older tools localise worst.
"""

from __future__ import annotations

from typing import List

from ..simulation.state import NetworkState
from ..topology.network import INTERNET
from .base import Monitor, RawAlert

#: Verification fails above this loss on the pinned link.
LINK_LOSS_THRESHOLD = 0.02


class SrteProbeMonitor(Monitor):
    """Per-circuit-set label-steered reachability verification, every 60 s."""

    name = "srte_probe"
    period_s = 60.0

    def __init__(self, state: NetworkState, seed: int = 0) -> None:
        super().__init__(state, seed)
        self._set_ids = sorted(
            cs.set_id
            for cs in self.topology.circuit_sets.values()
            if INTERNET not in cs.endpoints
        )

    def observe(self, t: float) -> List[RawAlert]:
        alerts: List[RawAlert] = []
        for set_id in self._set_ids:
            cs = self.topology.circuit_sets[set_id]
            if not self._state.circuit_set_usable(set_id):
                alerts.append(
                    self._alert(
                        "label_path_broken",
                        t,
                        message=f"label-steered probe over {set_id} failed: "
                                f"no member circuit up",
                        device=cs.device_a,
                        loss_rate=1.0,
                    )
                )
                continue
            loss = self._state.circuit_set_loss_rate(set_id)
            if loss >= LINK_LOSS_THRESHOLD:
                alerts.append(
                    self._alert(
                        "label_path_loss",
                        t,
                        message=f"label-steered probe over {set_id}: "
                                f"loss {loss:.1%}",
                        device=cs.device_a,
                        loss_rate=loss,
                    )
                )
        return alerts
