"""Alert stream: drives all monitors over simulated time.

Produces the raw alert firehose SkyNet consumes, ordered by *delivery*
time -- which can trail observation time by minutes for counters from
CPU-starved legacy devices (see ``monitors.snmp``).  This delivery jitter
is why the locator keeps nodes alive for 5 minutes (§4.2).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Sequence

from ..simulation.state import NetworkState
from .base import Monitor, RawAlert


class AlertStream:
    """Polls a set of monitors over a network state and yields raw alerts."""

    def __init__(self, state: NetworkState, monitors: Sequence[Monitor],
                 tick_s: float = 2.0) -> None:
        if tick_s <= 0:
            raise ValueError("tick must be positive")
        if not monitors:
            raise ValueError("need at least one monitor")
        self._state = state
        self._monitors = list(monitors)
        self._tick_s = float(tick_s)

    @property
    def monitors(self) -> List[Monitor]:
        return list(self._monitors)

    def run(
        self,
        duration_s: float,
        start: float = 0.0,
        limit: Optional[int] = None,
    ) -> Iterator[RawAlert]:
        """Yield raw alerts delivered during ``[start, start + duration_s)``,
        in delivery order.

        ``limit`` caps the number of alerts yielded -- flood benchmarks and
        kill-and-resume tests size runs in alerts rather than simulated
        hours, and a cap here stops monitor polling as soon as the quota is
        reached instead of simulating the rest of the horizon."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if limit is not None and limit <= 0:
            return
        seq = itertools.count()
        yielded = 0
        buffer: list = []  # (delivered_at, seq, alert)
        t = start
        end = start + duration_s
        while t < end:
            self._state.set_time(t)
            for monitor in self._monitors:
                for alert in monitor.collect(t):
                    heapq.heappush(buffer, (alert.delivered_at, next(seq), alert))
            while buffer and buffer[0][0] <= t:
                yield heapq.heappop(buffer)[2]
                yielded += 1
                if limit is not None and yielded >= limit:
                    return
            t += self._tick_s
        # flush whatever was delivered before the horizon closed
        while buffer and buffer[0][0] < end:
            yield heapq.heappop(buffer)[2]
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    def collect(
        self, duration_s: float, start: float = 0.0, limit: Optional[int] = None
    ) -> List[RawAlert]:
        """Convenience: materialise the whole run."""
        return list(self.run(duration_s, start=start, limit=limit))
