"""Experiment harness and accuracy metrics for the evaluation benches."""

from .experiments import CampaignResult, replay, run_campaign
from .metrics import MATCH_SLACK_S, AccuracyReport, percentile, score_incidents

__all__ = [
    "AccuracyReport",
    "CampaignResult",
    "MATCH_SLACK_S",
    "percentile",
    "replay",
    "run_campaign",
    "score_incidents",
]
