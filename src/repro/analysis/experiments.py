"""Campaign harness: one call from scenario list to scored SkyNet output.

Every benchmark and integration test runs the same loop -- build fabric,
inject failures and noise, stream the twelve monitors, run SkyNet, score
against ground truth -- so it lives here once.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from ..core.config import SkyNetConfig
from ..core.incident import Incident
from ..core.pipeline import IncidentReport, SkyNet
from ..monitors.base import RawAlert
from ..monitors.registry import build_monitors
from ..monitors.stream import AlertStream
from ..simulation.failures import FailureScenario, sample_campaign
from ..simulation.injector import FailureInjector
from ..simulation.noise import BackgroundNoise, NoiseProfile
from ..simulation.state import NetworkState
from ..topology.builder import TopologySpec, build_topology
from ..topology.network import Topology
from ..topology.traffic import TrafficModel, generate_traffic


@dataclasses.dataclass
class CampaignResult:
    """Everything one simulated campaign produced."""

    topology: Topology
    traffic: TrafficModel
    state: NetworkState
    injector: FailureInjector
    skynet: SkyNet
    raw_alerts: List[RawAlert]
    reports: List[IncidentReport]

    @property
    def incidents(self) -> List[Incident]:
        return [r.incident for r in self.reports]


def run_campaign(
    duration_s: float,
    scenarios: Optional[Sequence[FailureScenario]] = None,
    n_random_failures: int = 0,
    spec: Optional[TopologySpec] = None,
    topology: Optional[Topology] = None,
    traffic: Optional[TrafficModel] = None,
    noise: Optional[NoiseProfile] = NoiseProfile(),
    config: Optional[SkyNetConfig] = None,
    sources: Optional[Sequence[str]] = None,
    n_customers: int = 40,
    severe_fraction: float = 0.15,
    seed: int = 42,
) -> CampaignResult:
    """Run one end-to-end campaign.

    ``scenarios`` are injected as given; ``n_random_failures`` additional
    failures are sampled from the Figure 1 distribution across the horizon.
    ``sources=None`` runs all twelve monitors (pass a subset for the
    coverage-ablation experiments).
    """
    rng = random.Random(seed)
    topo = topology if topology is not None else build_topology(
        spec or TopologySpec()
    )
    tm = traffic if traffic is not None else generate_traffic(
        topo, n_customers=n_customers, seed=seed + 1
    )
    state = NetworkState(topo, tm)
    injector = FailureInjector(state)
    for scenario in scenarios or ():
        injector.inject(scenario)
    if n_random_failures:
        injector.inject_all(
            sample_campaign(
                topo, rng, n_random_failures, duration_s,
                severe_fraction=severe_fraction,
            )
        )
    if noise is not None:
        injector.inject_noise(
            BackgroundNoise(topo, noise, seed=seed + 2).generate(duration_s)
        )
    monitors = build_monitors(state, include=sources, seed=seed + 3)
    stream = AlertStream(state, monitors)
    raw_alerts = stream.collect(duration_s)
    skynet = SkyNet(topo, config=config, state=state, traffic=tm)
    reports = skynet.process(raw_alerts)
    return CampaignResult(
        topology=topo,
        traffic=tm,
        state=state,
        injector=injector,
        skynet=skynet,
        raw_alerts=raw_alerts,
        reports=reports,
    )


def replay(
    result: CampaignResult, config: SkyNetConfig
) -> List[IncidentReport]:
    """Re-run SkyNet over an already-collected alert stream with a different
    configuration -- how the threshold-sweep experiments (Figure 9) avoid
    re-simulating the network per parameter point."""
    skynet = SkyNet(
        result.topology,
        config=config,
        state=result.state,
        traffic=result.traffic,
    )
    return skynet.process(result.raw_alerts)
