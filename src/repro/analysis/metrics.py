"""Accuracy metrics: scoring detected incidents against injected ground
truth (Figures 8a and 9).

Conventions, matching the paper's operator review:

* a **true positive** is an incident overlapping a real failure in both
  time and location (either containment direction -- SkyNet may group
  wider than the failure or zoom narrower);
* a **false positive** is an incident corresponding to *no* injected
  scenario at all, i.e. built purely from background noise;
* a **false negative** is a customer-impacting failure no incident covers.

Ratios are reported the way Figure 9's y-axis reads: FP as a fraction of
detected incidents, FN as a fraction of impacting failures.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..core.incident import Incident, IncidentStatus
from ..simulation.failures import GroundTruth
from ..simulation.injector import FailureInjector

#: grace period around a failure window when matching incidents to it
#: (covers polling periods and delayed SNMP delivery)
MATCH_SLACK_S = 180.0


@dataclasses.dataclass
class AccuracyReport:
    """Confusion-style summary of one detection run."""

    true_positive_incidents: List[Incident]
    false_positive_incidents: List[Incident]
    detected_truths: List[GroundTruth]
    missed_truths: List[GroundTruth]

    @property
    def incident_count(self) -> int:
        return len(self.true_positive_incidents) + len(self.false_positive_incidents)

    @property
    def false_positive_ratio(self) -> float:
        if self.incident_count == 0:
            return 0.0
        return len(self.false_positive_incidents) / self.incident_count

    @property
    def false_negative_ratio(self) -> float:
        total = len(self.detected_truths) + len(self.missed_truths)
        if total == 0:
            return 0.0
        return len(self.missed_truths) / total

    def summary(self) -> str:
        return (
            f"incidents={self.incident_count} "
            f"FP={len(self.false_positive_incidents)} "
            f"({self.false_positive_ratio:.1%}) "
            f"FN={len(self.missed_truths)} ({self.false_negative_ratio:.1%})"
        )


def _matches(incident: Incident, truth: GroundTruth) -> bool:
    if not truth.overlaps_window(
        incident.start_time - MATCH_SLACK_S, incident.end_time + MATCH_SLACK_S
    ):
        return False
    location = incident.root
    return truth.scope.contains(location) or location.contains(truth.scope)


def score_incidents(
    incidents: Sequence[Incident],
    injector: FailureInjector,
    impacting_only: bool = True,
) -> AccuracyReport:
    """Match incidents to the injector's ground-truth ledger."""
    considered = [
        i for i in incidents if i.status is not IncidentStatus.SUPERSEDED
    ]
    truths = [
        t
        for t in injector.ground_truths
        if not impacting_only or t.customer_impacting
    ]
    all_truths = injector.ground_truths
    tp: List[Incident] = []
    fp: List[Incident] = []
    for incident in considered:
        # any scenario (impacting or not) legitimises an incident
        if any(_matches(incident, t) for t in all_truths):
            tp.append(incident)
        else:
            fp.append(incident)
    detected = [t for t in truths if any(_matches(i, t) for i in considered)]
    missed = [t for t in truths if t not in detected]
    return AccuracyReport(
        true_positive_incidents=tp,
        false_positive_incidents=fp,
        detected_truths=detected,
        missed_truths=missed,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Simple inclusive percentile (q in [0, 100]) without numpy."""
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError("q out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lower = int(pos)
    frac = pos - lower
    if lower + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lower] * (1 - frac) + ordered[lower + 1] * frac
