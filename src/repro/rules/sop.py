"""Standard Operating Procedures: the automatic mitigations rules trigger.

A plan is a sequence of reversible actions plus the rollback the paper
insists on ("a rollback plan is prepared, enabling network operators to
manually revert actions to prevent incorrect mitigation", §7.2).  Executing
an action against the simulator *ends the matching conditions* -- the fault
is still physically there (a ticket is cut for repair) but its service
impact stops, which is what mitigation means operationally.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence

from ..simulation.conditions import Condition
from ..simulation.state import NetworkState


class ActionKind(enum.Enum):
    ISOLATE_DEVICE = "isolate_device"  # drain traffic off a device
    DISABLE_INTERFACE = "disable_interface"  # shut a flapping/corrupting link
    BLOCK_TRAFFIC = "block_traffic"  # ACL drop (DDoS response)
    OPEN_REPAIR_TICKET = "open_repair_ticket"  # human follow-up, no net change
    REDUCE_BANDWIDTH = "reduce_bandwidth"  # §2.2-style service de-prioritisation


@dataclasses.dataclass(frozen=True)
class SOPAction:
    kind: ActionKind
    target: str  # device name, circuit-set id, or location string
    note: str = ""

    def render(self) -> str:
        return f"{self.kind.value}({self.target})" + (f"  # {self.note}" if self.note else "")


@dataclasses.dataclass
class SOPPlan:
    """Ordered mitigation actions with their rollback."""

    name: str
    actions: Sequence[SOPAction]
    rollback: Sequence[SOPAction] = ()

    def render(self) -> str:
        lines = [f"SOP {self.name}:"]
        lines += [f"  - {a.render()}" for a in self.actions]
        if self.rollback:
            lines.append("  rollback:")
            lines += [f"  - {a.render()}" for a in self.rollback]
        return "\n".join(lines)


@dataclasses.dataclass
class ExecutionRecord:
    plan: SOPPlan
    executed_at: float
    mitigated_condition_ids: List[str]
    rolled_back: bool = False


class SOPExecutor:
    """Applies plans to the simulated network and keeps an audit trail."""

    #: action kinds that stop a fault's service impact when targeted at it
    _MITIGATING = frozenset(
        {
            ActionKind.ISOLATE_DEVICE,
            ActionKind.DISABLE_INTERFACE,
            ActionKind.BLOCK_TRAFFIC,
            ActionKind.REDUCE_BANDWIDTH,
        }
    )

    def __init__(self, state: NetworkState) -> None:
        self._state = state
        self._history: List[ExecutionRecord] = []

    @property
    def history(self) -> List[ExecutionRecord]:
        return list(self._history)

    def execute(self, plan: SOPPlan, now: Optional[float] = None) -> ExecutionRecord:
        """Run a plan: every mitigating action ends the active conditions on
        its target (device name, circuit-set id, or location string)."""
        now = self._state.now if now is None else now
        mitigated: List[str] = []
        for action in plan.actions:
            if action.kind not in self._MITIGATING:
                continue
            for cond in self._conditions_on_target(action.target):
                self._state.end_condition(cond.condition_id, at=now)
                mitigated.append(cond.condition_id)
        record = ExecutionRecord(
            plan=plan, executed_at=now, mitigated_condition_ids=mitigated
        )
        self._history.append(record)
        return record

    def _conditions_on_target(self, target: str) -> List[Condition]:
        # device and circuit-set ids share one namespace in the index
        conds = {
            c.condition_id: c for c in self._state.conditions_on_device(target)
        }
        for cond in self._state.conditions_on_circuit_set(target):
            conds[cond.condition_id] = cond
        # location targets (DDoS victims) are stringified paths
        for cond in self._state.active_conditions():
            if not isinstance(cond.target, str) and str(cond.target) == target:
                conds[cond.condition_id] = cond
        return list(conds.values())

    def rollback(self, record: ExecutionRecord) -> None:
        """Mark a plan rolled back (the audit trail the paper requires).

        Re-activating ended conditions is intentionally not supported: in
        production a rollback restores configuration, not the fault.
        """
        record.rolled_back = True
