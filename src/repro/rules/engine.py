"""Heuristic rule engine (§7.2): the pre-SkyNet diagnosis system.

Operators hand-wrote ~1000 rules of the form "if a device in a group loses
packets, and its peers are silent, and group traffic is low, then isolate
it".  Rules match *known* failure patterns; anything unprecedented falls
through ("no heuristic rule could effectively address it") -- which is why
SkyNet exists.  SkyNet still runs matched rules automatically as SOPs for
known failures (Figure 5a "Automatic SOP", §5.1 first case study).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from ..core.incident import Incident
from ..simulation.state import NetworkState
from ..topology.network import Topology
from .sop import SOPPlan


@dataclasses.dataclass
class RuleContext:
    """Everything a rule predicate may inspect."""

    incident: Incident
    topology: Topology
    state: Optional[NetworkState] = None
    now: float = 0.0


#: A predicate over the rule context; all of a rule's predicates must hold.
Predicate = Callable[[RuleContext], bool]
#: Builds the mitigation plan once a rule matches.
PlanBuilder = Callable[[RuleContext], SOPPlan]


@dataclasses.dataclass
class HeuristicRule:
    """One manually-formulated diagnosis rule."""

    name: str
    description: str
    predicates: Sequence[Predicate]
    plan_builder: PlanBuilder

    def matches(self, ctx: RuleContext) -> bool:
        return all(pred(ctx) for pred in self.predicates)


@dataclasses.dataclass
class RuleMatch:
    rule: HeuristicRule
    plan: SOPPlan


class RuleEngine:
    """Evaluates the rule library against incidents, first match wins."""

    def __init__(self, rules: Sequence[HeuristicRule]) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names")
        self._rules = list(rules)

    @property
    def rules(self) -> List[HeuristicRule]:
        return list(self._rules)

    def match(self, ctx: RuleContext) -> Optional[RuleMatch]:
        """First matching rule's plan, or ``None`` (an *unknown* failure)."""
        for rule in self._rules:
            if rule.matches(ctx):
                return RuleMatch(rule=rule, plan=rule.plan_builder(ctx))
        return None

    def is_known_failure(self, ctx: RuleContext) -> bool:
        return self.match(ctx) is not None
