"""A representative slice of the production rule corpus (§7.2).

Production accumulated nearly 1,000 hand-written rules; these few capture
the archetypes the paper describes.  Crucially, none of them matches a
severe/unprecedented failure -- that fall-through is the behaviour the
whole paper is about.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from ..core.alert import AlertLevel
from ..core.incident import Incident
from .engine import HeuristicRule, RuleContext
from .sop import ActionKind, SOPAction, SOPPlan

#: Group utilisation must be below this for isolation to be safe
#: ("the traffic remains manageable", §2).
SAFE_GROUP_UTILIZATION = 0.5

#: Alert type names that are direct packet-loss evidence at a device.
_LOSS_TYPES = frozenset({"packet_loss", "rate_mismatch", "hop_loss"})
_CIRCUIT_TYPES = frozenset({"port_down", "link_down"})


def _primary_device(incident: Incident) -> Optional[str]:
    """The device carrying the most alert records in the incident."""
    counts: Counter[str] = Counter(
        r.device for r in incident.records() if r.device is not None
    )
    if not counts:
        return None
    return counts.most_common(1)[0][0]


def _has_device_loss_evidence(ctx: RuleContext) -> bool:
    device = _primary_device(ctx.incident)
    if device is None:
        return False
    return any(
        r.device == device and r.type_key.name in _LOSS_TYPES
        for r in ctx.incident.records()
    )


def _group_peers_silent(ctx: RuleContext) -> bool:
    """No failure/root-cause evidence from the device's redundancy peers."""
    device = _primary_device(ctx.incident)
    if device is None or not ctx.topology.has_device(device):
        return False
    group = ctx.topology.device(device).group
    peers = {
        d.name for d in ctx.topology.devices_in_group(group) if d.name != device
    }
    if not peers:
        return False
    for record in ctx.incident.records():
        if record.device in peers and record.level in (
            AlertLevel.FAILURE,
            AlertLevel.ROOT_CAUSE,
        ):
            return False
    return True


def _group_traffic_manageable(ctx: RuleContext) -> bool:
    """Peers can absorb the device's traffic: group utilisation is low."""
    device = _primary_device(ctx.incident)
    if device is None or ctx.state is None:
        return device is not None  # without state, assume manageable
    sets = ctx.topology.circuit_sets_of(device)
    if not sets:
        return False
    offered = sum(ctx.state.offered_load_gbps(cs.set_id) for cs in sets)
    capacity = sum(cs.total_capacity_gbps for cs in sets)
    return capacity > 0 and offered / capacity < SAFE_GROUP_UTILIZATION


def _single_location(ctx: RuleContext) -> bool:
    """All alerts inside one cluster/site -- not a wide-area event."""
    from ..topology.hierarchy import Level

    return ctx.incident.root.structural_level.value >= Level.SITE.value


def _isolation_plan(ctx: RuleContext) -> SOPPlan:
    device = _primary_device(ctx.incident) or "<unknown>"
    return SOPPlan(
        name="isolate-lossy-device",
        actions=(
            SOPAction(ActionKind.ISOLATE_DEVICE, device,
                      note="peers silent, traffic manageable"),
            SOPAction(ActionKind.OPEN_REPAIR_TICKET, device),
        ),
        rollback=(
            SOPAction(ActionKind.ISOLATE_DEVICE, device, note="un-isolate"),
        ),
    )


def _only_circuit_evidence(ctx: RuleContext) -> bool:
    """Port/link-down records only, nothing failure-level: redundancy held."""
    has_circuit = False
    for record in ctx.incident.records():
        if record.level is AlertLevel.FAILURE:
            return False
        if record.type_key.name in _CIRCUIT_TYPES:
            has_circuit = True
    return has_circuit


def _no_full_breaks(ctx: RuleContext) -> bool:
    if ctx.state is None:
        return True
    root = ctx.incident.root
    sets = (
        ctx.topology.circuit_sets_of(root.name)
        if root.is_device
        else ctx.topology.circuit_sets_under(root)
    )
    return all(ctx.state.circuit_set_break_ratio(cs.set_id) < 1.0 for cs in sets)


def _ticket_plan(ctx: RuleContext) -> SOPPlan:
    target = _primary_device(ctx.incident) or str(ctx.incident.root)
    return SOPPlan(
        name="redundant-circuit-repair",
        actions=(SOPAction(ActionKind.OPEN_REPAIR_TICKET, target,
                           note="redundancy holding; schedule splice"),),
    )


def _has_flapping(ctx: RuleContext) -> bool:
    return any(
        r.type_key.name in ("link_flapping", "crc_errors")
        for r in ctx.incident.records()
    )


def _no_failure_alerts(ctx: RuleContext) -> bool:
    return all(r.level is not AlertLevel.FAILURE for r in ctx.incident.records())


def _interface_plan(ctx: RuleContext) -> SOPPlan:
    device = _primary_device(ctx.incident) or str(ctx.incident.root)
    return SOPPlan(
        name="disable-unstable-interface",
        actions=(
            SOPAction(ActionKind.DISABLE_INTERFACE, device,
                      note="flapping/CRC-errored interface shut"),
            SOPAction(ActionKind.OPEN_REPAIR_TICKET, device),
        ),
        rollback=(SOPAction(ActionKind.DISABLE_INTERFACE, device, note="no shut"),),
    )


def default_rule_library() -> List[HeuristicRule]:
    """The representative rule set, most specific first."""
    return [
        HeuristicRule(
            name="device-packet-loss-isolation",
            description=(
                "A device in a redundancy group loses packets, its peers are "
                "silent, and group traffic is manageable: isolate it (§7.2)."
            ),
            predicates=(
                _single_location,
                _has_device_loss_evidence,
                _group_peers_silent,
                _group_traffic_manageable,
            ),
            plan_builder=_isolation_plan,
        ),
        HeuristicRule(
            name="flapping-interface-disable",
            description=(
                "A flapping or CRC-erroring interface with no customer-facing "
                "loss: administratively shut it and cut a ticket."
            ),
            predicates=(_single_location, _has_flapping, _no_failure_alerts),
            plan_builder=_interface_plan,
        ),
        HeuristicRule(
            name="redundant-circuit-repair",
            description=(
                "Circuits broke but redundancy held (no failure alerts, no "
                "fully-broken set): open a repair ticket only."
            ),
            predicates=(_single_location, _only_circuit_evidence, _no_full_breaks),
            plan_builder=_ticket_plan,
        ),
    ]
