"""Heuristic rules and automatic SOPs (§7.2, Figure 5a)."""

from .engine import HeuristicRule, Predicate, RuleContext, RuleEngine, RuleMatch
from .library import SAFE_GROUP_UTILIZATION, default_rule_library
from .sop import (
    ActionKind,
    ExecutionRecord,
    SOPAction,
    SOPExecutor,
    SOPPlan,
)

__all__ = [
    "ActionKind",
    "ExecutionRecord",
    "HeuristicRule",
    "Predicate",
    "RuleContext",
    "RuleEngine",
    "RuleMatch",
    "SAFE_GROUP_UTILIZATION",
    "SOPAction",
    "SOPExecutor",
    "SOPPlan",
    "default_rule_library",
]
