"""Developer tooling for the SkyNet reproduction.

``repro.devtools.lint`` is the domain-aware static-analysis pass (the
REP-rule battery); future correctness tooling (profilers, invariant
fuzzers) lives here too.  Nothing under this package is imported by the
pipeline at runtime.
"""

from __future__ import annotations
