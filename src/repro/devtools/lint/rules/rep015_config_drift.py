"""REP015: config fields and CLI flags must not drift apart.

Config drift is how reproductions rot: a ``RuntimeParams`` field that
nothing reads (the knob silently stopped doing anything), a CLI flag
that parses but never reaches the config (the operator *thinks* they
changed behaviour), or a runtime parameter that simply cannot be set
from the command line.  This rule cross-checks three surfaces:

* every dataclass field in the config module is **read** somewhere in
  the project (an attribute load with that name, anywhere);
* every ``--flag`` the runtime CLI declares is **consumed** (its dest is
  read off the parsed namespace) and **maps to a field** -- a config
  field by name or via the alias table, a chaos-plan field for
  ``--chaos-*`` flags, or an explicitly exempt operational flag;
* every field of the runtime-params class (and of the chaos plan) is
  **settable from some flag**, by name or alias.

The alias table is declarative because flag spelling is UX and field
spelling is code (``--checkpoint-every`` vs ``checkpoint_interval_s``);
keeping the map in rule options makes renames a reviewed, one-line diff.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Mapping, Set, Tuple

from ..astutil import dotted_name
from ..engine import Finding, LintRule, Project, SourceFile, register


@register
class ConfigDriftRule(LintRule):
    rule_id = "REP015"
    title = "config fields and CLI flags stay wired to each other"
    paper_ref = "§5 (repro operability)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        "config_module": "repro.core.config",
        "cli_module": "repro.runtime.cli",
        "params_class": "RuntimeParams",
        "chaos_module": "repro.runtime.faults",
        "chaos_class": "ChaosPlan",
        #: CLI dest -> config field, when the names differ
        "flag_aliases": {
            "checkpoint_every": "checkpoint_interval_s",
            "watermark": "admission_watermark",
            "compact_journal": "journal_compaction",
            "admission_window": "admission_window_s",
            "io_base_backoff": "io_base_backoff_s",
            "io_max_backoff": "io_max_backoff_s",
        },
        #: chaos CLI dest -> chaos-plan field
        "chaos_aliases": {
            "chaos_outage": "outages",
            "chaos_brownout": "brownouts",
            "chaos_shard_crash": "shard_crashes",
            "chaos_correlated_crash": "correlated_crashes",
            "chaos_io": "io_faults",
            "chaos_skew": "clock_skews",
            "chaos_seed": "seed",
        },
        #: operational flags that legitimately configure the *run*, not
        #: the config object (scenario selection, output shaping, ...)
        "exempt_flags": (
            "topology",
            "scenario",
            "duration",
            "alerts",
            "seed",
            "dir",
            "resume",
            "metrics",
            "top",
        ),
    }

    # -- fact extraction ---------------------------------------------------

    def _dataclass_fields(
        self, source: SourceFile
    ) -> Dict[str, Dict[str, Tuple[int, int]]]:
        """class name -> {field name: (line, col)} for annotated fields."""
        assert source.tree is not None
        out: Dict[str, Dict[str, Tuple[int, int]]] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            fields: Dict[str, Tuple[int, int]] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields[stmt.target.id] = (
                        stmt.lineno,
                        stmt.col_offset + 1,
                    )
            if fields:
                out[node.name] = fields
        return out

    def _flags(
        self, source: SourceFile
    ) -> List[Tuple[str, str, int, int]]:
        """(flag, dest, line, col) per ``add_argument("--...")`` call."""
        assert source.tree is not None
        out: List[Tuple[str, str, int, int]] = []
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and first.value.startswith("--")
            ):
                continue
            flag = first.value
            dest = flag.lstrip("-").replace("-", "_")
            for kw in node.keywords:
                if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                    dest = str(kw.value.value)
            out.append((flag, dest, node.lineno, node.col_offset + 1))
        return out

    @staticmethod
    def _attribute_loads(project: Project) -> Set[str]:
        names: Set[str] = set()
        for source in project.files:
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    names.add(node.attr)
        return names

    # -- the checks --------------------------------------------------------

    def check_project(self, project: Project) -> Iterable[Finding]:
        config_src = project.module(str(self.options["config_module"]))
        cli_src = project.module(str(self.options["cli_module"]))
        chaos_src = project.module(str(self.options["chaos_module"]))
        if config_src is None or config_src.tree is None:
            return  # nothing to check outside the repro tree (fixtures
            # point the options at their own modules)

        classes = self._dataclass_fields(config_src)
        reads = self._attribute_loads(project)
        aliases: Dict[str, str] = dict(self.options["flag_aliases"])
        chaos_aliases: Dict[str, str] = dict(self.options["chaos_aliases"])
        exempt = set(self.options["exempt_flags"])

        # 1. every config field is read somewhere
        for cls_name in sorted(classes):
            for field in sorted(classes[cls_name]):
                if field not in reads:
                    line, col = classes[cls_name][field]
                    yield Finding(
                        path=config_src.rel,
                        line=line,
                        col=col,
                        rule_id=self.rule_id,
                        message=(
                            f"config field {cls_name}.{field} is never "
                            f"read; dead knob or missing wiring"
                        ),
                    )

        all_fields: Set[str] = set()
        for fields in classes.values():
            all_fields.update(fields)
        chaos_fields: Dict[str, Tuple[int, int]] = {}
        if chaos_src is not None and chaos_src.tree is not None:
            chaos_fields = self._dataclass_fields(chaos_src).get(
                str(self.options["chaos_class"]), {}
            )

        if cli_src is None or cli_src.tree is None:
            return
        flags = self._flags(cli_src)
        cli_reads = self._attribute_loads_of(cli_src)
        dests = {dest for _, dest, _, _ in flags}

        for flag, dest, line, col in flags:
            # 2a. the flag's value is consumed by the CLI module
            if dest not in cli_reads:
                yield Finding(
                    path=cli_src.rel,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"CLI flag {flag} is parsed but args.{dest} is "
                        f"never read; the flag does nothing"
                    ),
                )
                continue
            # 2b. the flag maps to a field
            if dest in exempt:
                continue
            if dest.startswith("chaos_"):
                target = chaos_aliases.get(dest)
                if target is None or target not in chaos_fields:
                    yield Finding(
                        path=cli_src.rel,
                        line=line,
                        col=col,
                        rule_id=self.rule_id,
                        message=(
                            f"chaos flag {flag} maps to no "
                            f"{self.options['chaos_class']} field "
                            f"(chaos_aliases entry missing or stale)"
                        ),
                    )
                continue
            mapped = aliases.get(dest, dest)
            if mapped not in all_fields:
                yield Finding(
                    path=cli_src.rel,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"CLI flag {flag} maps to no config field "
                        f"(no field named {mapped!r}; add a flag_aliases "
                        f"entry or an exempt_flags entry)"
                    ),
                )

        # 3. every runtime param (and chaos-plan field) is CLI-settable
        settable = {aliases.get(dest, dest) for dest in dests}
        params = classes.get(str(self.options["params_class"]), {})
        for field in sorted(params):
            if field not in settable:
                line, col = params[field]
                yield Finding(
                    path=config_src.rel,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"{self.options['params_class']}.{field} cannot be "
                        f"set from the runtime CLI; add a flag (or alias)"
                    ),
                )
        chaos_settable = {
            chaos_aliases[dest] for dest in dests if dest in chaos_aliases
        }
        for field in sorted(chaos_fields):
            if field not in chaos_settable and chaos_src is not None:
                line, col = chaos_fields[field]
                yield Finding(
                    path=chaos_src.rel,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"{self.options['chaos_class']}.{field} cannot be "
                        f"set from any --chaos-* flag"
                    ),
                )

    @staticmethod
    def _attribute_loads_of(source: SourceFile) -> Set[str]:
        assert source.tree is not None
        names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                names.add(node.attr)
            elif isinstance(node, ast.Call):
                func = dotted_name(node.func)
                if func == "getattr" and len(node.args) >= 2:
                    second = node.args[1]
                    if isinstance(second, ast.Constant) and isinstance(
                        second.value, str
                    ):
                        names.add(second.value)
        return names
