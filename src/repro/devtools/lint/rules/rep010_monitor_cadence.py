"""REP010: monitor cadence literals must match the Table-2 registry.

Table 2 fixes each tool's polling period, and §4.2 documents the one
delivery-delay bound that sized SkyNet's incident timeout (SNMP counters
from legacy gear arrive up to ~2 minutes late).  The repro records both
in ``monitors/registry.py`` as ``TABLE2_CADENCE`` so experiments can
introspect them; the monitor classes carry the *same* numbers as
``period_s`` / ``*_DELAY_S`` literals the scheduler actually uses.  When
the two copies drift, coverage and detection-delay benches silently
measure a cadence the registry (and the paper tables built from it) no
longer describes.  This project-scoped rule cross-checks, for every
concrete ``Monitor`` subclass that declares a Table-2 ``name``:

* a ``period_s = <literal>`` class attribute must equal the registry's
  ``period_s`` for that source (inheriting the base default is exempt);
* the source must have a ``TABLE2_CADENCE`` entry at all;
* a module-level ``<X>_DELAY_S = <literal>`` constant must match the
  registry's ``delivery_delay_s`` -- in both directions: an undocumented
  delay constant and a registry delay with no backing constant are each
  findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..astutil import assigned_names, base_names
from ..engine import Finding, LintRule, Project, SourceFile, register

#: monitor-package modules that carry no monitor class to check
_INFRA_MODULES = ("registry", "base", "stream", "__init__")


def _cadence_table(registry: SourceFile) -> Dict[str, Dict[str, float]]:
    """``TABLE2_CADENCE`` read straight from the registry module's AST."""
    table: Dict[str, Dict[str, float]] = {}
    assert registry.tree is not None
    for node in registry.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if "TABLE2_CADENCE" not in assigned_names(node):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            continue
        for key, entry in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            if not isinstance(entry, ast.Dict):
                continue
            fields: Dict[str, float] = {}
            for fkey, fval in zip(entry.keys, entry.values):
                if (
                    isinstance(fkey, ast.Constant)
                    and isinstance(fkey.value, str)
                    and isinstance(fval, ast.Constant)
                    and isinstance(fval.value, (int, float))
                ):
                    fields[fkey.value] = float(fval.value)
            table[key.value] = fields
    return table


def _declared_name(cls: ast.ClassDef) -> Optional[str]:
    for stmt in cls.body:
        for bound in assigned_names(stmt):
            if bound == "name":
                value = stmt.value  # type: ignore[union-attr]
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


def _numeric_attr(cls: ast.ClassDef, attr: str) -> Optional[Tuple[ast.stmt, float]]:
    for stmt in cls.body:
        if attr in assigned_names(stmt):
            value = stmt.value  # type: ignore[union-attr]
            if isinstance(value, ast.Constant) and isinstance(value.value, (int, float)):
                return stmt, float(value.value)
    return None


def _module_delay_constants(source: SourceFile) -> List[Tuple[ast.stmt, str, float]]:
    out: List[Tuple[ast.stmt, str, float]] = []
    assert source.tree is not None
    for node in source.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not (isinstance(value, ast.Constant) and isinstance(value.value, (int, float))):
            continue
        for bound in assigned_names(node):
            if bound.endswith("_DELAY_S"):
                out.append((node, bound, float(value.value)))
    return out


@register
class MonitorCadenceRule(LintRule):
    rule_id = "REP010"
    title = "monitor cadence literals must match the Table-2 registry"
    paper_ref = "Table 2, §4.2"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.module_by_suffix("monitors.registry")
        monitor_files: List[SourceFile] = [
            f
            for f in project.files
            if f.module is not None
            and "monitors" in f.module.split(".")[:-1]
            and f.module.rsplit(".", 1)[-1] not in _INFRA_MODULES
        ]
        if registry is None or not monitor_files:
            return
        cadence = _cadence_table(registry)
        if not cadence:
            return  # no TABLE2_CADENCE table to check against (REP006's job)
        for source in monitor_files:
            assert source.tree is not None
            delay_consts = _module_delay_constants(source)
            delay_expected: Dict[str, float] = {}
            for node in source.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if "Monitor" not in base_names(node):
                    continue
                declared = _declared_name(node)
                if declared is None:
                    continue  # unnamed/abstract monitors are REP006's beat
                entry = cadence.get(declared)
                if entry is None:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"monitor {node.name} (source {declared!r}) has no "
                        f"TABLE2_CADENCE entry in {registry.rel}",
                    )
                    continue
                period = _numeric_attr(node, "period_s")
                if period is not None and period[1] != entry.get("period_s"):
                    yield source.finding(
                        self.rule_id,
                        period[0],
                        f"monitor {node.name} polls at period_s={period[1]:g} "
                        f"but TABLE2_CADENCE[{declared!r}] records "
                        f"{entry.get('period_s', float('nan')):g}",
                    )
                if "delivery_delay_s" in entry:
                    delay_expected[declared] = entry["delivery_delay_s"]
            for stmt, bound, value in delay_consts:
                matches = [s for s, v in delay_expected.items() if v == value]
                if not matches:
                    yield source.finding(
                        self.rule_id,
                        stmt,
                        f"delivery-delay constant {bound} = {value:g} does not "
                        f"match any TABLE2_CADENCE delivery_delay_s for this "
                        f"module's sources",
                    )
            for declared, expected in delay_expected.items():
                if not any(v == expected for _, _, v in delay_consts):
                    yield source.finding(
                        self.rule_id,
                        source.tree.body[0] if source.tree.body else source.tree,
                        f"TABLE2_CADENCE[{declared!r}] records "
                        f"delivery_delay_s={expected:g} but this module declares "
                        f"no matching *_DELAY_S constant",
                    )
