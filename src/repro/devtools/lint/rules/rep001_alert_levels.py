"""REP001: alert-level literals must come from the ``AlertLevel`` taxonomy.

§4.2 defines exactly three importance levels (failure / abnormal / root
cause, plus the repro's ``info`` for filtered chatter), modelled by
``repro.core.alert.AlertLevel``.  Comparing against the raw strings
(``record.level == "failure"``) bypasses the enum: a typo like
``"falure"`` is forever-false and silently drops alerts from incident
counting instead of raising.  The rule flags equality/membership
comparisons against level strings and ``AlertLevel("failure")``-style
value lookups; display tables mapping ``AlertLevel`` members *to*
strings (e.g. the viz renderer) are fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..astutil import compare_pairs, dotted_name
from ..engine import Finding, LintRule, SourceFile, register

#: The enum's value strings (kept literal here: this rule must not import
#: the enum at match time -- fixtures run without ``repro`` importable).
LEVEL_VALUES = frozenset({"failure", "abnormal", "root_cause", "info"})


def _level_literals(node: ast.AST) -> List[str]:
    """Level strings appearing in a constant or a literal container."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str) and node.value in LEVEL_VALUES:
            return [node.value]
        return []
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: List[str] = []
        for element in node.elts:
            out.extend(_level_literals(element))
        return out
    return []


@register
class AlertLevelLiteralRule(LintRule):
    rule_id = "REP001"
    title = "alert-level literals must use the AlertLevel taxonomy"
    paper_ref = "§4.2"
    #: The enum definition itself legitimately spells the value strings.
    exclude_modules = ("repro.core.alert", "repro.devtools.*")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Compare):
                for op, left, right in compare_pairs(node):
                    if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                        continue
                    for side in (left, right):
                        for value in _level_literals(side):
                            yield source.finding(
                                self.rule_id,
                                node,
                                f"comparison against raw level string {value!r}; "
                                f"use AlertLevel.{value.upper()} "
                                f"(is/is not for enum members)",
                            )
            elif isinstance(node, ast.Call):
                if dotted_name(node.func) in ("AlertLevel", "alert.AlertLevel"):
                    for arg in node.args:
                        for value in _level_literals(arg):
                            yield source.finding(
                                self.rule_id,
                                node,
                                f"AlertLevel({value!r}) lookup by raw string; "
                                f"use AlertLevel.{value.upper()}",
                            )
