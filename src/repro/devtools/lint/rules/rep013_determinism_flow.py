"""REP013: nondeterminism must not flow into incident identity, journals
or checkpoints.

REP004 flags nondeterministic *calls* outside the simulation kernel;
this rule tracks their *values*.  The repro's replay guarantee is that
two runs over the same alert stream produce byte-identical incident
streams, journals and checkpoints -- so a wall-clock read, a global-RNG
draw, an ``os.environ`` lookup, an unseeded ``random.Random()``, or the
iteration order of a set must never reach an incident id, a timestamp
field, Incident construction, a journal write, or a checkpoint payload
(``state_dict``/``pipeline_state_dict`` and ``*checkpoint*`` calls: a
tainted value serialised today resurfaces on resume and diverges the
replay one run later).  The flow is traced
cross-function along the call graph (through returns and attribute
assignments), so laundering ``time.time()`` through two helpers still
reports -- at the *source* call site, with the witness path to the sink.

When both this rule and REP004 fire on the same call site (``--project``
runs), the engine keeps only this finding (``supersedes``): the flow
message is strictly more actionable.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..engine import Finding, LintRule, Project, register


@register
class DeterminismFlowRule(LintRule):
    rule_id = "REP013"
    title = "nondeterminism must not reach incident ids, journals or checkpoints"
    paper_ref = "§5 (repro determinism)"
    scope = "project"
    project_only = True
    supersedes = ("REP004",)
    default_options: Mapping[str, Any] = {
        #: modules whose calls are not treated as sources (the simulated
        #: clock and seeded noise kernel are *allowed* to own time/RNG)
        "kernel_modules": (
            "repro.simulation.clock",
            "repro.simulation.noise",
        ),
        #: cap on witness steps shown in the message
        "max_via": 4,
    }

    def check_project(self, project: Project) -> Iterable[Finding]:
        taint = project.analysis.taint(
            exclude_modules=tuple(self.options["kernel_modules"])
        )
        max_via = int(self.options["max_via"])
        for flow in taint.flows:
            via = list(flow.via[:max_via])
            if len(flow.via) > max_via:
                via.append("...")
            trail = f" via {'; '.join(via)}" if via else ""
            yield Finding(
                path=flow.source.path,
                line=flow.source.line,
                col=flow.source.col,
                rule_id=self.rule_id,
                message=(
                    f"{flow.source.kind} source {flow.source.detail} "
                    f"(in {flow.source.function}) flows into {flow.sink} "
                    f"at {flow.sink_path}:{flow.sink_line}{trail}; "
                    f"replayed runs will diverge"
                ),
            )
