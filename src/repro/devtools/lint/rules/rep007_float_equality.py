"""REP007: no float ``==`` on alert/incident timestamps.

Alerts and incidents carry float timestamps (``first_seen``,
``last_seen``, ``delivered_at``, ...).  Rule predicates and grouping
logic that compare them with ``==``/``!=`` are one floating-point
round-trip away from never matching -- e.g. a merge window that should
close exactly at an alert's ``last_seen`` misses it and the incident
stays open past the §4.2 timeout.  Order comparisons (``<``, ``>=``) are
exact and fine; equality should be ``math.isclose`` or an identity/None
check (``is None`` for optional close times).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import compare_pairs
from ..engine import Finding, LintRule, SourceFile, register

#: Timestamp attribute names of the alert/incident dataclasses.
TIMESTAMP_ATTRS = frozenset(
    {
        "timestamp",
        "first_seen",
        "last_seen",
        "delivered_at",
        "created_at",
        "update_time",
        "closed_at",
        "window_start",
    }
)


def _timestamp_attr(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute) and node.attr in TIMESTAMP_ATTRS:
        return node.attr
    return ""


@register
class TimestampEqualityRule(LintRule):
    rule_id = "REP007"
    title = "no float == on alert/incident timestamps"
    paper_ref = "§4.2 (timeout correctness)"
    exclude_modules = ("repro.devtools.*",)

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, left, right in compare_pairs(node):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                attr = _timestamp_attr(left) or _timestamp_attr(right)
                if attr:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"float equality on timestamp attribute .{attr}; "
                        f"use math.isclose, an order comparison, or "
                        f"'is (not) None' for optional times",
                    )
