"""REP004: no wall clocks or global RNG outside the simulation kernel.

The repro's core invariant is that runs are *deterministic*: SkyNet's
pipeline never reads the wall clock ("every component takes explicit
timestamps"), and every stochastic choice flows from a seeded
``random.Random`` instance.  ``time.time()`` or the module-level
``random.uniform(...)`` anywhere else silently breaks replayability and
property-based testing.  Only ``simulation/clock.py`` (the single source
of simulated "now") and ``simulation/noise.py`` may touch these;
everything else must take timestamps as arguments and RNGs as seeded
instances.  Unseeded ``random.Random()`` (OS-entropy seeded) is flagged
too; ``random.Random(seed)`` is the sanctioned idiom.

The clock/RNG inventory lives in ``..determinism`` and is shared with
the whole-program REP013 taint rule.  When both rules run (``--project``
mode) and REP013 traces a flow out of a call site this rule also flags,
the engine keeps only the REP013 finding (REP013 declares
``supersedes = ("REP004",)``): one call site, one report, and the
project-level flow message is the more actionable of the two.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..astutil import dotted_name
from ..determinism import CLOCK_CALLS, GLOBAL_RNG_FUNCS  # noqa: F401  (re-export)
from ..engine import Finding, LintRule, SourceFile, register


@register
class DeterminismRule(LintRule):
    rule_id = "REP004"
    title = "wall clocks and global RNG only in the simulation kernel"
    paper_ref = "§5 (repro determinism)"
    exclude_modules = ("repro.simulation.clock", "repro.simulation.noise")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                if callee in CLOCK_CALLS:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"wall-clock read {callee}(); take simulated "
                        f"timestamps as arguments (simulation/clock.py is "
                        f"the only source of now)",
                    )
                elif callee.startswith("random.") and \
                        callee[len("random."):] in GLOBAL_RNG_FUNCS:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"global RNG call {callee}(); use a seeded "
                        f"random.Random instance",
                    )
                elif callee in ("random.Random", "Random") and not (
                    node.args or node.keywords
                ):
                    yield source.finding(
                        self.rule_id,
                        node,
                        "random.Random() without a seed is OS-entropy "
                        "seeded; pass an explicit seed",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    bad = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in GLOBAL_RNG_FUNCS
                    )
                    if bad:
                        yield source.finding(
                            self.rule_id,
                            node,
                            f"importing global RNG function(s) {bad} from "
                            f"random; use a seeded random.Random instance",
                        )
                elif node.module == "time":
                    bad = sorted(
                        alias.name
                        for alias in node.names
                        if f"time.{alias.name}" in CLOCK_CALLS
                    )
                    if bad:
                        yield source.finding(
                            self.rule_id,
                            node,
                            f"importing wall-clock function(s) {bad} from "
                            f"time; take timestamps as arguments",
                        )
