"""REP016: serving-path timing knobs come from params, not literals.

The fault-tolerance batteries (net chaos, correlated crash recovery)
only stay fast and deterministic because every retry budget, backoff
bound and socket timeout on the serving path is a *parameter* --
``RuntimeParams`` for the runtime, ``GatewayParams`` for the gateway --
that tests can crank down to microseconds and operators can tune
without a code change.  A numeric literal handed straight to
``settimeout``/``sleep``/``wait`` or to a ``timeout=``/``backoff=``/
``max_attempts=`` keyword re-hardcodes the knob: the chaos battery
either slows to real-time backoffs or silently stops exercising the
retry path.  This rule flags such literals inside function bodies of
the serving modules.

Dataclass field *defaults* are exempt by construction (the params
classes are where the numbers are supposed to live), as are module- and
class-level constant bindings.  A literal that is genuinely not a
serving knob (e.g. the reap bound for an already-SIGKILLed worker)
should carry a ``# lint: allow REP016`` waiver explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from ..astutil import is_number_constant
from ..engine import Finding, LintRule, SourceFile, register


@register
class TimingLiteralRule(LintRule):
    rule_id = "REP016"
    title = "retry/backoff/timeout numbers come from RuntimeParams/GatewayParams"
    paper_ref = "§5 (serving-path operability)"
    include_modules = ("repro.runtime*", "repro.gateway*")
    default_options = {
        #: method names whose positional argument is a wall-clock delay
        "timing_calls": ("settimeout", "sleep", "wait"),
        #: keyword names that carry a timing/retry knob wherever they
        #: appear; matched exactly or by the listed suffixes
        "timing_keywords": ("timeout", "max_attempts", "attempts"),
        "timing_suffixes": ("_timeout", "_timeout_s", "_backoff_s", "_interval_s"),
        #: substrings that mark a keyword as a backoff knob
        "timing_substrings": ("backoff",),
    }

    def _is_timing_keyword(self, name: str) -> bool:
        if name in self.options["timing_keywords"] or name == "timeout_s":
            return True
        if any(name.endswith(sfx) for sfx in self.options["timing_suffixes"]):
            return True
        return any(sub in name for sub in self.options["timing_substrings"])

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for func in ast.walk(source.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in func.body:
                    yield from self._check_body(source, stmt)

    def _check_body(self, source: SourceFile, node: ast.AST) -> Iterator[Finding]:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            yield from self._check_call(source, call)

    def _call_name(self, call: ast.Call) -> str:
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        if isinstance(call.func, ast.Name):
            return call.func.id
        return ""

    def _check_call(self, source: SourceFile, call: ast.Call) -> Iterator[Finding]:
        name = self._call_name(call)
        sites: List[Tuple[ast.AST, str]] = []
        if name in self.options["timing_calls"] and call.args:
            first = call.args[0]
            if is_number_constant(first):
                sites.append(
                    (first, f"positional delay in {name}({first.value!r})")  # type: ignore[attr-defined]
                )
        for kw in call.keywords:
            if (
                kw.arg is not None
                and self._is_timing_keyword(kw.arg)
                and is_number_constant(kw.value)
            ):
                sites.append(
                    (kw.value, f"keyword {kw.arg}={kw.value.value!r}")  # type: ignore[attr-defined]
                )
        for node, what in sites:
            yield source.finding(
                self.rule_id,
                node,
                f"hard-coded timing literal ({what}); take it from "
                f"RuntimeParams/GatewayParams so tests and operators "
                f"can tune it",
            )
