"""REP009: hard-coded alert-type keys must exist in the level tables.

§4.1/§4.2: every (tool, type) SkyNet ingests is manually assigned an
importance level in the alert-type registry (``core/alert_types.py``).
``level_of`` deliberately defaults unknown keys to ABNORMAL so a new
data source degrades gracefully -- which means a *typo* in a hard-coded
key (``level_of("snmp", "link_dwon")``) never raises: the alert silently
changes level and incident counting shifts.  This project-scoped rule
checks every constant alert-type reference against the registry:

* ``level_of("tool", "name")`` / ``type_key("tool", "name")`` calls and
  ``AlertTypeKey(tool=..., name=...)`` constructions with literal
  arguments must name a registered key;
* a monitor's ``self._alert("<raw_type>", ...)`` with a literal type
  must combine with the class's Table-2 ``name`` into a registered key
  (the preprocessor looks the pair up verbatim);
* the registry's own ``SPORADIC_TYPES`` / ``CONDITIONAL_TYPES`` entries
  must be ``ALERT_TYPE_LEVELS`` keys -- a stale tuple there silently
  stops debouncing its type.

A legitimate raw carrier type that is classified *before* lookup (e.g.
syslog's raw ``"log"`` lines, template-classified downstream) carries a
``# lint: allow REP009`` waiver explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from ..astutil import assigned_names, base_names, dotted_name
from ..engine import Finding, LintRule, Project, SourceFile, register

#: call names that take (tool, type-name) string pairs
_LOOKUP_CALLS = ("level_of", "type_key")

#: the second keyword of each lookup/constructor form
_SECOND_KWARG = {"level_of": "type_name", "type_key": "type_name",
                 "AlertTypeKey": "name"}

_TABLE_NAMES = ("SPORADIC_TYPES", "CONDITIONAL_TYPES")


def _str_const(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _pair_from_call(call: ast.Call, second_kwarg: str) -> Optional[Tuple[str, str]]:
    """(tool, name) when both arguments are string literals."""
    args: List[Optional[str]] = [None, None]
    for i, arg in enumerate(call.args[:2]):
        args[i] = _str_const(arg)
    for kw in call.keywords:
        if kw.arg == "tool":
            args[0] = _str_const(kw.value)
        elif kw.arg == second_kwarg:
            args[1] = _str_const(kw.value)
    if args[0] is not None and args[1] is not None:
        return (args[0], args[1])
    return None


def _registered_keys(registry: SourceFile) -> Set[Tuple[str, str]]:
    """The (tool, type) keys of the ALERT_TYPE_LEVELS table."""
    keys: Set[Tuple[str, str]] = set()
    assert registry.tree is not None
    for node in ast.walk(registry.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if "ALERT_TYPE_LEVELS" not in assigned_names(node):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        for key in node.value.keys:
            if isinstance(key, ast.Tuple) and len(key.elts) == 2:
                tool, name = (_str_const(e) for e in key.elts)
                if tool is not None and name is not None:
                    keys.add((tool, name))
    return keys


def _auxiliary_tables(
    registry: SourceFile,
) -> Iterable[Tuple[str, ast.Tuple, Tuple[str, str]]]:
    """(table name, tuple node, key) for SPORADIC/CONDITIONAL members."""
    assert registry.tree is not None
    for node in ast.walk(registry.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        names = [n for n in assigned_names(node) if n in _TABLE_NAMES]
        if not names:
            continue
        for tup in ast.walk(node.value):  # type: ignore[arg-type]
            if isinstance(tup, ast.Tuple) and len(tup.elts) == 2:
                tool, name = (_str_const(e) for e in tup.elts)
                if tool is not None and name is not None:
                    yield names[0], tup, (tool, name)


def _monitor_source_name(cls: ast.ClassDef) -> Optional[str]:
    for stmt in cls.body:
        if "name" in assigned_names(stmt):
            return _str_const(stmt.value)  # type: ignore[union-attr]
    return None


@register
class AlertTypeRegistryRule(LintRule):
    rule_id = "REP009"
    title = "hard-coded alert-type keys must be registered in the level tables"
    paper_ref = "§4.1-4.2, Figure 6"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.module_by_suffix("core.alert_types")
        if registry is None:
            return
        keys = _registered_keys(registry)
        if not keys:
            yield Finding(
                path=registry.rel,
                line=1,
                col=1,
                rule_id=self.rule_id,
                message="alert-type registry defines no ALERT_TYPE_LEVELS keys",
            )
            return

        # the registry's own auxiliary tables must stay in sync
        for table, node, key in _auxiliary_tables(registry):
            if key not in keys:
                yield registry.finding(
                    self.rule_id,
                    node,
                    f"{table} entry {key!r} is not an ALERT_TYPE_LEVELS key",
                )

        for source in project.files:
            if source is registry or source.tree is None:
                continue
            yield from self._check_references(source, keys)

    def _check_references(
        self, source: SourceFile, keys: Set[Tuple[str, str]]
    ) -> Iterable[Finding]:
        monitor_name = None
        for node in ast.walk(source.tree):  # type: ignore[arg-type]
            if isinstance(node, ast.ClassDef) and "Monitor" in base_names(node):
                monitor_name = monitor_name or _monitor_source_name(node)
        for node in ast.walk(source.tree):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            short = name.rsplit(".", 1)[-1] if name else None
            if short in _LOOKUP_CALLS or short == "AlertTypeKey":
                pair = _pair_from_call(node, _SECOND_KWARG[short])
                if pair is not None and pair not in keys:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"{short} names unregistered alert type {pair!r}; "
                        f"register it in the alert-type level tables",
                    )
            elif short == "_alert" and monitor_name is not None:
                raw_type = _str_const(node.args[0]) if node.args else None
                if raw_type is not None and (monitor_name, raw_type) not in keys:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"monitor emits ({monitor_name!r}, {raw_type!r}) "
                        f"which is not in the alert-type level tables",
                    )
