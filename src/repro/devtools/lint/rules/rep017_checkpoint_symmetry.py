"""REP017: checkpoint writers and loaders must agree on their key sets.

Exact resume is the repo's core invariant: a checkpoint taken mid-flood
and loaded into a fresh process must reproduce the incident stream
byte-identically.  That hinges on ten-odd ``state_dict`` /
``load_state_dict`` pairs staying symmetric -- and a missed key fails
*silently*: the writer drops a field, the loader keeps defaulting, and
nothing crashes until an incident id drifts three PRs later.

This rule pairs each writer with its loader (same class for methods,
same module for free functions) and compares literal key sets through
the CFG layer:

* every key the writer emits (returned dict literal, or subscript
  stores on the returned variable) must be read by the loader
  (``state["k"]``, ``.get``/``.pop``/``.setdefault``, or a ``"k" in
  state`` membership test);
* every key the loader *hard-reads* (plain subscript, ``.pop`` without
  default) must be written -- a ``.get`` with default or a
  membership-guarded read is tolerated as a back-compat migration read;
* a **version-gated** key (written on some but not all CFG paths, per
  the must-execute analysis) hard-read without a guard is flagged: old
  checkpoints will ``KeyError`` on resume.

Pairs where either side is *dynamic* (dict comprehension, ``dict(x)``,
``.items()`` iteration, the state dict passed around whole) are skipped
-- the key set is not statically enumerable, and those shapes copy the
mapping wholesale so they cannot drop a key.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..engine import Finding, LintRule, Project, register
from ..project.cfg import CFG
from ..project.flow import solve

_READ_METHODS = {"get", "pop", "setdefault"}


@dataclasses.dataclass
class _WriterFacts:
    """Literal keys one checkpoint writer emits."""

    #: key -> first write site
    keys: Dict[str, ast.AST]
    #: keys NOT written on every normal path (version-gated)
    gated: Set[str]


@dataclasses.dataclass
class _ReaderFacts:
    """Literal keys one checkpoint loader consumes."""

    #: key -> first hard-read site (plain subscript / pop without default)
    hard: Dict[str, ast.AST]
    #: keys read forgivingly (.get / .pop-with-default / .setdefault)
    soft: Set[str]
    #: keys tested with ``"k" in state``
    membership: Set[str]

    @property
    def all_keys(self) -> Set[str]:
        return set(self.hard) | self.soft | self.membership


def _const_key(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class CheckpointSymmetryRule(LintRule):
    rule_id = "REP017"
    title = "state_dict/load_state_dict key sets stay symmetric"
    paper_ref = "§5 (exact resumability)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        #: (writer name, loader name) pairs, matched within one class
        #: for methods and within one module for free functions
        "pairs": (
            ("state_dict", "load_state_dict"),
            ("pipeline_state_dict", "restore_pipeline_state"),
        ),
        #: parameter names recognised as the incoming state mapping
        "state_params": ("state", "payload", "snapshot"),
    }

    # -- writer side -------------------------------------------------------

    def _writer_facts(
        self, cfg: CFG, func: ast.AST
    ) -> Optional[_WriterFacts]:
        """Keys the writer emits, or None when not statically enumerable."""
        returned_literals: List[Tuple[ast.Dict, int]] = []
        returned_vars: Set[str] = set()
        for bid, block in cfg.blocks.items():
            stmt = block.stmt
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            value = stmt.value
            if isinstance(value, ast.Dict):
                returned_literals.append((value, bid))
            elif isinstance(value, ast.Name):
                returned_vars.add(value.id)
            else:
                return None  # returns something we can't enumerate
        if not returned_literals and not returned_vars:
            return None

        keys: Dict[str, ast.AST] = {}
        block_keys: Dict[int, Set[str]] = {}

        def record(key: str, node: ast.AST, bid: int) -> None:
            keys.setdefault(key, node)
            block_keys.setdefault(bid, set()).add(key)

        for literal, bid in returned_literals:
            for key_node in literal.keys:
                if key_node is None:
                    return None  # ``**spread`` -- dynamic
                key = _const_key(key_node)
                if key is None:
                    return None
                record(key, key_node, bid)

        for bid, block in cfg.blocks.items():
            stmt = block.stmt
            if stmt is None:
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if stmt.value is None:
                    continue  # bare annotation
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in returned_vars
                    ):
                        got = self._literal_dict_keys(stmt.value)
                        if got is None:
                            return None
                        for key, node in got:
                            record(key, node, bid)
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in returned_vars
                    ):
                        key = _const_key(target.slice)
                        if key is None:
                            return None
                        record(key, target, bid)
            elif (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and isinstance(stmt.value.func.value, ast.Name)
                and stmt.value.func.value.id in returned_vars
            ):
                # out.update({...}) with a literal is fine; anything else
                # mutating the returned dict makes the key set dynamic
                call = stmt.value
                if call.func.attr != "update" or len(call.args) != 1:
                    return None
                got = self._literal_dict_keys(call.args[0])
                if got is None:
                    return None
                for key, node in got:
                    record(key, node, bid)
        if not keys:
            return None

        # must-analysis: which keys are written on every normal path
        written_everywhere: FrozenSet[str] = solve(
            cfg,
            direction="forward",
            may=False,
            gen=lambda block: block_keys.get(block.id, ()),
            kill=lambda block: (),
            universe=set(keys),
            include_exceptional=False,
        ).outputs[cfg.exit]
        return _WriterFacts(
            keys=keys, gated=set(keys) - set(written_everywhere)
        )

    @staticmethod
    def _literal_dict_keys(
        value: ast.expr,
    ) -> Optional[List[Tuple[str, ast.AST]]]:
        """Keys of a dict-literal initialiser; None when dynamic."""
        if isinstance(value, ast.Dict):
            out: List[Tuple[str, ast.AST]] = []
            for key_node in value.keys:
                if key_node is None:
                    return None
                key = _const_key(key_node)
                if key is None:
                    return None
                out.append((key, key_node))
            return out
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
            and not value.args
        ):
            out = []
            for kw in value.keywords:
                if kw.arg is None:
                    return None
                out.append((kw.arg, kw))
            return out
        return None

    # -- reader side -------------------------------------------------------

    def _reader_facts(
        self, func: ast.AST, param: str
    ) -> Optional[_ReaderFacts]:
        """Keys the loader consumes, or None when it reads dynamically."""
        facts = _ReaderFacts(hard={}, soft=set(), membership=set())
        claimed: Set[int] = set()  # Name-load node ids used safely
        for node in ast.walk(func):  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
            ):
                key = _const_key(node.slice)
                if key is None:
                    return None
                claimed.add(id(node.value))
                if isinstance(node.ctx, ast.Load):
                    facts.hard.setdefault(key, node)
                # stores into the incoming state are not reads; ignore
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
            ):
                method = node.func.attr
                if method not in _READ_METHODS:
                    return None  # .items()/.keys()/.values()/... -> dynamic
                claimed.add(id(node.func.value))
                if not node.args:
                    return None
                key = _const_key(node.args[0])
                if key is None:
                    return None
                has_default = len(node.args) > 1 or bool(node.keywords)
                if method == "pop" and not has_default:
                    facts.hard.setdefault(key, node)
                else:
                    facts.soft.add(key)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                operands = [node.left, *node.comparators]
                container = operands[-1]
                if (
                    isinstance(container, ast.Name)
                    and container.id == param
                ):
                    key = _const_key(operands[0])
                    if key is None:
                        return None
                    claimed.add(id(container))
                    facts.membership.add(key)
        # any other use of the whole mapping (iteration, dict(state),
        # passing it on) makes the read set dynamic
        for node in ast.walk(func):  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Name)
                and node.id == param
                and isinstance(node.ctx, ast.Load)
                and id(node) not in claimed
            ):
                return None
        return facts

    # -- pairing and reporting ---------------------------------------------

    def _pairs(self, project: Project):
        """Yield (writer FunctionInfo, reader FunctionInfo, owner label)."""
        symbols = project.analysis.symbols
        pairs = tuple(tuple(p) for p in self.options["pairs"])
        for module in sorted(symbols.modules):
            table = symbols.modules[module]
            for write_name, read_name in pairs:
                if (
                    write_name in table.functions
                    and read_name in table.functions
                ):
                    yield (
                        table.functions[write_name],
                        table.functions[read_name],
                        module,
                    )
            for cls_name in sorted(table.classes):
                cls = table.classes[cls_name]
                for write_name, read_name in pairs:
                    if (
                        write_name in cls.methods
                        and read_name in cls.methods
                    ):
                        yield (
                            cls.methods[write_name],
                            cls.methods[read_name],
                            f"{cls_name}",
                        )

    def _state_param(self, func: ast.AST, is_method: bool) -> Optional[str]:
        args = getattr(func, "args", None)
        if args is None:
            return None
        names = [a.arg for a in args.posonlyargs + args.args]
        if is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        wanted = tuple(self.options["state_params"])
        for name in names:
            if name in wanted:
                return name
        return names[0] if len(names) == 1 else None

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = project.analysis
        for writer, reader, owner in self._pairs(project):
            written = self._writer_facts(analysis.cfg(writer), writer.node)
            if written is None:
                continue
            param = self._state_param(
                reader.node, is_method=reader.owner is not None
            )
            if param is None:
                continue
            read = self._reader_facts(reader.node, param)
            if read is None:
                continue
            writer_label = f"{owner}.{writer.name}"
            reader_label = f"{owner}.{reader.name}"

            for key in sorted(set(written.keys) - read.all_keys):
                node = written.keys[key]
                yield Finding(
                    path=writer.source.rel,
                    line=getattr(node, "lineno", writer.node.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"checkpoint key {key!r} written by {writer_label} "
                        f"is never read by {reader_label}; the state is "
                        f"silently dropped on resume"
                    ),
                )
            for key in sorted(set(read.hard) - set(written.keys)):
                if key in read.membership:
                    continue  # guarded back-compat read
                node = read.hard[key]
                yield Finding(
                    path=reader.source.rel,
                    line=getattr(node, "lineno", reader.node.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"{reader_label} reads checkpoint key {key!r} that "
                        f"{writer_label} never writes; resume will KeyError"
                    ),
                )
            for key in sorted(
                written.gated & set(read.hard) - read.membership
            ):
                node = read.hard[key]
                yield Finding(
                    path=reader.source.rel,
                    line=getattr(node, "lineno", reader.node.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"checkpoint key {key!r} is version-gated (not "
                        f"written on every {writer_label} path) but "
                        f"{reader_label} reads it unguarded; use .get() or "
                        f"a membership test for old checkpoints"
                    ),
                )

    def cache_closure(self, project: Project) -> Optional[List[str]]:
        """The verdict depends only on modules defining a checkpoint pair
        (the comparison is intraprocedural on both sides)."""
        wanted: Set[str] = set()
        for pair in self.options["pairs"]:
            wanted.update(pair)
        modules: Set[str] = set()
        for source in project.files:
            if source.module is None or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if (
                    isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and node.name in wanted
                ):
                    modules.add(source.module)
                    break
        return sorted(modules)
