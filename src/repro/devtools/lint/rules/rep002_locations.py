"""REP002: literal location strings must parse against the hierarchy.

Every alert is indexed by a ``LocationPath`` over the strict
Root→Region→City→Logic site→Site→Cluster→Device hierarchy of Figure 5b.
A literal path that is too deep, has an empty segment, or smuggles the
``|`` separator inside a segment raises ``ValueError`` only when the
code path actually runs -- in a rarely-taken branch that can be long
after deploy.  This rule evaluates literal arguments of
``LocationPath.parse(...)`` and ``LocationPath((...))`` constructions at
lint time, using the real hierarchy implementation so the two can never
drift apart.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..astutil import dotted_name
from ..engine import Finding, LintRule, SourceFile, register


def _literal_segments(node: ast.AST) -> Optional[List[str]]:
    """String elements of a literal tuple/list, or None if not literal."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    segments: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        segments.append(element.value)
    return segments


def _keyword_bool(call: ast.Call, name: str) -> Optional[bool]:
    for keyword in call.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, bool):
                return value
    return None


@register
class LocationLiteralRule(LintRule):
    rule_id = "REP002"
    title = "literal location strings must parse against the hierarchy"
    paper_ref = "§4.1, Fig. 5b"
    exclude_modules = ("repro.topology.hierarchy", "repro.devtools.*")

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        # Deferred import: the *real* hierarchy validates the literals, so
        # the rule can never disagree with runtime behaviour.
        from repro.topology.hierarchy import LocationPath

        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None:
                continue
            is_device = _keyword_bool(node, "is_device")
            problem: Optional[str] = None
            if callee.endswith("LocationPath.parse") or callee == "parse_location":
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    text = node.args[0].value
                    try:
                        LocationPath.parse(text, is_device=bool(is_device))
                    except ValueError as exc:
                        problem = f"bad location literal {text!r}: {exc}"
            elif callee == "LocationPath" or callee.endswith(".LocationPath"):
                segments = _literal_segments(node.args[0]) if node.args else None
                if segments is not None:
                    try:
                        LocationPath(segments, is_device=bool(is_device))
                    except ValueError as exc:
                        problem = f"bad location segments {segments!r}: {exc}"
            if problem is not None:
                yield source.finding(self.rule_id, node, problem)
