"""REP005: no mutable default argument values.

A ``def observe(self, out=[])`` default is evaluated once at function
definition and shared across every call -- in this codebase that means
alerts from one simulation run leaking into the next, which corrupts
incident grouping in the quietest possible way.  Flags list/dict/set
displays and ``list()``/``dict()``/``set()``/``bytearray()`` calls used
as defaults; use ``None`` plus an in-body default, or
``dataclasses.field(default_factory=...)`` for dataclasses.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, LintRule, SourceFile, register

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(LintRule):
    rule_id = "REP005"
    title = "no mutable default argument values"
    paper_ref = "(hygiene; protects run isolation)"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
            for default in defaults:
                if _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield source.finding(
                        self.rule_id,
                        default,
                        f"mutable default in {name}(); use None and build "
                        f"inside the body (shared across calls otherwise)",
                    )
