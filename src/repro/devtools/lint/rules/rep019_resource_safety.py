"""REP019: runtime/gateway resources are closed on every CFG path.

The chaos batteries keep demonstrating the same lesson: the leak is
never on the happy path.  A journal segment opened before a write that
raises, a socket accepted and then lost to a handshake exception, a
worker pipe left dangling when spawn fails -- each survives every test
that doesn't inject the fault, then exhausts descriptors during the one
flood that matters.

For every acquisition (``open``, ``socket``, ``accept``, ``makefile``,
``Popen``, ``Pipe``) in the runtime/gateway modules this rule walks the
function's CFG and asks: starting from the acquisition *succeeding*,
can execution reach the function exit without passing a close of that
variable?  Two passes, in order of severity:

* over normal edges only -- an early return/branch skips the close;
* over exception edges too -- the close exists but is not in a
  ``finally`` (or after the last may-raise use), so an unwind leaks.

Acquisitions are exempt when the resource provably changes owner:
bound by ``with`` (the context manager closes it), stored on an
attribute or container, returned, or passed to another call (a thread,
a supervisor, ``contextlib.closing``).  Generator functions are skipped
wholesale -- their finalisation runs on the consumer's schedule, not
this function's CFG.
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..engine import Finding, LintRule, Project, register
from ..project.cfg import CFG
from ..project.flow import reaches
from ..project.symbols import FunctionInfo


@register
class ResourceSafetyRule(LintRule):
    rule_id = "REP019"
    title = "resources in runtime/gateway close on all paths"
    paper_ref = "§6.2 (failure-path hygiene)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        #: dotted-module fnmatch patterns this rule applies to
        "module_patterns": ("*runtime*", "*gateway*"),
        #: call leaf name -> resource label
        "constructors": {
            "open": "file",
            "socket": "socket",
            "create_connection": "socket",
            "accept": "socket",
            "makefile": "file",
            "Popen": "process",
            "Pipe": "pipe",
        },
        #: method names that release a resource
        "close_methods": ("close", "terminate", "kill", "shutdown"),
    }

    # -- acquisition discovery ---------------------------------------------

    def _acquired_leaf(self, value: ast.expr) -> Optional[str]:
        """Resource label when ``value`` is a tracked constructor call."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        leaf = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        constructors: Mapping[str, str] = self.options["constructors"]
        if leaf is None or leaf not in constructors:
            return None
        return constructors[leaf]

    def _acquisitions(
        self, cfg: CFG
    ) -> List[Tuple[str, str, int, ast.stmt]]:
        """(var, resource label, block id, stmt) per tracked assignment."""
        out: List[Tuple[str, str, int, ast.stmt]] = []
        for bid, block in sorted(cfg.blocks.items()):
            stmt = block.stmt
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            label = self._acquired_leaf(stmt.value)
            if label is None:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                names = [target.id]
            elif isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                # conn, addr = sock.accept() -- the resource rides first;
                # r, w = Pipe() -- both ends need closing
                if label == "pipe":
                    names = [e.id for e in target.elts]  # type: ignore[union-attr]
                else:
                    names = [target.elts[0].id]  # type: ignore[union-attr]
            else:
                continue  # attribute target: ownership escapes at birth
            for name in names:
                if name in cfg.managed_names:
                    continue  # with-bound: the context manager closes it
                out.append((name, label, bid, stmt))
        return out

    # -- escape and close analysis -----------------------------------------

    @staticmethod
    def _escapes(func: ast.AST, var: str, acq_stmt: ast.stmt) -> bool:
        """True when ``var`` may change owner: any load outside receiver
        (``var.method()``, ``var.attr``), truth-test, or comparison
        position hands the resource to someone else."""
        receiver_ok: Set[int] = set()
        for node in ast.walk(func):  # type: ignore[arg-type]
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                receiver_ok.add(id(node.value))
            elif isinstance(node, ast.Compare):
                for operand in (node.left, *node.comparators):
                    if isinstance(operand, ast.Name):
                        receiver_ok.add(id(operand))
            elif isinstance(node, (ast.If, ast.While)):
                test = node.test
                if isinstance(test, ast.UnaryOp):
                    test = test.operand
                if isinstance(test, ast.Name):
                    receiver_ok.add(id(test))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        receiver_ok.add(id(target))
        for node in ast.walk(func):  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Name)
                and node.id == var
                and isinstance(node.ctx, ast.Load)
                and id(node) not in receiver_ok
            ):
                # ignore loads inside the acquisition statement itself
                if any(node is n for n in ast.walk(acq_stmt)):
                    continue
                return True
        return False

    def _close_blocks(self, cfg: CFG, var: Optional[str]) -> Set[int]:
        """Blocks closing ``var`` -- or, with ``var=None``, closing any
        name (close calls are treated as infallible path-wise)."""
        close_methods = tuple(self.options["close_methods"])
        out: Set[int] = set()
        for bid, block in cfg.blocks.items():
            stmt = block.stmt
            if stmt is None:
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in close_methods
                    and isinstance(node.func.value, ast.Name)
                    and (var is None or node.func.value.id == var)
                ):
                    out.add(bid)
                    break
        return out

    # -- the check ---------------------------------------------------------

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = project.analysis
        patterns = tuple(self.options["module_patterns"])
        wanted = {
            f.module
            for pattern in patterns
            for f in project.modules_matching(pattern)
            if f.module is not None
        }
        for key in sorted(analysis.symbols.functions):
            info: FunctionInfo = analysis.symbols.functions[key]
            if info.module not in wanted:
                continue
            if any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for n in ast.walk(info.node)
            ):
                continue  # generator: finalisation is the consumer's
            cfg = analysis.cfg(info)
            all_closes = self._close_blocks(cfg, None)
            for var, label, bid, acq_stmt in self._acquisitions(cfg):
                if self._escapes(info.node, var, acq_stmt):
                    continue
                closes = self._close_blocks(cfg, var)
                starts = [
                    e.dst
                    for e in cfg.succs(bid, include_exceptional=False)
                    if e.dst not in closes
                ]
                where = f"{info.module}:{info.qualname}"
                if not closes or any(
                    reaches(
                        cfg,
                        s,
                        cfg.exit,
                        avoid=closes,
                        include_exceptional=False,
                    )
                    for s in starts
                ):
                    yield Finding(
                        path=info.source.rel,
                        line=acq_stmt.lineno,
                        col=acq_stmt.col_offset + 1,
                        rule_id=self.rule_id,
                        message=(
                            f"{label} {var!r} opened in {where} is not "
                            f"closed on every normal path; an early "
                            f"return/branch leaks it"
                        ),
                    )
                    continue
                if any(
                    reaches(
                        cfg,
                        s,
                        cfg.exit,
                        avoid=closes,
                        include_exceptional=True,
                        no_raise=all_closes,
                    )
                    for s in starts
                ):
                    yield Finding(
                        path=info.source.rel,
                        line=acq_stmt.lineno,
                        col=acq_stmt.col_offset + 1,
                        rule_id=self.rule_id,
                        message=(
                            f"{label} {var!r} opened in {where} leaks when "
                            f"an exception unwinds; close it in a finally "
                            f"or use a with block"
                        ),
                    )

    def cache_closure(self, project: Project) -> Optional[List[str]]:
        """Purely intraprocedural: the verdict depends only on the
        runtime/gateway modules themselves."""
        patterns = tuple(self.options["module_patterns"])
        modules = {
            f.module
            for pattern in patterns
            for f in project.modules_matching(pattern)
            if f.module is not None
        }
        return sorted(modules)
