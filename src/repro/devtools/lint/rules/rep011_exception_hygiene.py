"""REP011: fault handling in core/runtime/monitors must be explicit.

The chaos layer (``repro.runtime.faults``) exists to prove the pipeline
survives real failures -- shard crashes, refused writes, silent sources.
That proof is worthless if a handler quietly eats the evidence: a bare
``except:`` swallows everything up to ``KeyboardInterrupt``, and an
``except Exception: pass`` turns an injected I/O fault into the exact
silent drop the retry/shed machinery is built to prevent.  In the
pipeline packages (``repro.core``, ``repro.runtime``,
``repro.monitors``) every handler must therefore name the exception
types it expects (``OSError``, ``pickle.UnpicklingError``, ...) and do
something observable with them -- re-raise, count, report, or return a
degraded-but-loud result.

Flags, in the scoped modules:

* any bare ``except:`` clause;
* any handler catching ``Exception`` (alone or inside a tuple) whose
  body is only ``pass``/``...`` -- the classic silent swallow.

Catching ``Exception`` and *acting* on it (logging, counting, wrapping)
is allowed; it is the combination of maximal breadth and zero reaction
that this rule bans.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable

from ..engine import Finding, LintRule, SourceFile, register


def _catches_exception(handler: ast.ExceptHandler) -> bool:
    """Does the handler's type clause name ``Exception`` (or ``BaseException``)?"""
    node = handler.type
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in (
            "Exception",
            "BaseException",
        ):
            return True
    return False


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register
class ExceptionHygieneRule(LintRule):
    rule_id = "REP011"
    title = "no bare except / silent Exception swallows in pipeline packages"
    paper_ref = "(robustness; degradation must be loud, §4.3)"
    include_modules = (
        "repro.core.*",
        "repro.runtime.*",
        "repro.monitors.*",
    )

    def applies_to(self, source: SourceFile) -> bool:
        if source.module is None:
            return True
        return any(
            fnmatch.fnmatchcase(source.module, pattern)
            for pattern in self.include_modules
        )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield source.finding(
                    self.rule_id,
                    node,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the exception types this "
                    "handler expects",
                )
            elif _catches_exception(node) and _body_is_silent(node):
                yield source.finding(
                    self.rule_id,
                    node,
                    "'except Exception' with an empty body silently "
                    "swallows every failure; name the expected types and "
                    "react observably (re-raise, count, or report)",
                )
