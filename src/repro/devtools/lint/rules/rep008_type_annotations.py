"""REP008: public functions in ``core/`` must be fully type-annotated.

The locator pipeline in ``repro.core`` is the part every other package
builds on; its signatures are the contract the mypy gate (pyproject
``[tool.mypy]``) enforces in CI.  This rule is the fast local mirror of
that gate: every public module-level function and every method of a
public class must annotate each parameter (including ``*args`` /
``**kwargs``; ``self``/``cls`` excepted) and the return type.  Private
helpers (leading underscore) are exempt; dunders are not -- they are
API.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, Iterator, List

from ..astutil import all_arguments
from ..engine import Finding, LintRule, SourceFile, register


def _missing_bits(func: ast.FunctionDef, is_method: bool) -> List[str]:
    missing: List[str] = []
    args = all_arguments(func.args)
    if is_method and args and args[0].arg in ("self", "cls"):
        args = args[1:]
    for arg in args:
        if arg.annotation is None:
            missing.append(f"parameter {arg.arg!r}")
    if func.returns is None:
        missing.append("return type")
    return missing


def _public(name: str) -> bool:
    return not name.startswith("_") or (name.startswith("__") and name.endswith("__"))


@register
class CoreAnnotationRule(LintRule):
    rule_id = "REP008"
    title = "public core/ functions must be fully type-annotated"
    paper_ref = "(typing gate; mirrors mypy CI)"
    include_modules = ("repro.core.*",)
    default_options = {
        #: additional dotted-module fnmatch patterns to cover; every
        #: repro package has graduated into the typed set (viz was the
        #: last), mirroring the pyproject mypy config with no
        #: ignore_errors overrides left
        "extra_modules": (
            "repro.simulation.*",
            "repro.runtime.*",
            "repro.gateway.*",
            "repro.analysis.*",
            "repro.operators.*",
            "repro.rules.*",
            "repro.baselines.*",
            "repro.syslogproc.*",
            "repro.viz.*",
        ),
    }

    def applies_to(self, source: SourceFile) -> bool:
        if source.module is None:
            return True
        patterns = self.include_modules + tuple(self.options["extra_modules"])
        return any(
            fnmatch.fnmatchcase(source.module, pat) for pat in patterns
        )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        yield from self._check_scope(source, source.tree.body, is_method=False)
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef) and _public(node.name):
                yield from self._check_scope(source, node.body, is_method=True,
                                             owner=node.name)

    def _check_scope(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        is_method: bool,
        owner: str = "",
    ) -> Iterator[Finding]:
        for node in body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _public(node.name):
                continue
            missing = _missing_bits(node, is_method)  # type: ignore[arg-type]
            if missing:
                qualname = f"{owner}.{node.name}" if owner else node.name
                yield source.finding(
                    self.rule_id,
                    node,
                    f"public function {qualname}() missing annotations: "
                    + ", ".join(missing),
                )
