"""REP018: metric registrations, update sites, and docs must agree.

The monitoring surface is stringly typed: ``metrics.counter("name")``
at ~34 call sites, plus counter tables in README/DESIGN/EXPERIMENTS.
Nothing ties them together -- rename a counter at its registration and
every other site silently starts a *second* metric, which is precisely
the "silent monitoring gap" failure mode the paper blames for floods
going unexplained.  This rule cross-checks three surfaces:

* **registrations**: every ``<registry>.counter/gauge/histogram(name)``
  call with a literal (or literal-prefixed f-string) name.  The same
  name registered under two different kinds is a drift finding.
* **update sites**: every ``.inc()/.set()/.observe()`` whose receiver
  resolves to a registration -- chained directly, through a
  ``self._x = metrics.counter(...)`` handle attribute, or through a
  same-function local.  The update method must match the handle's kind
  (``inc``→counter, ``set``→gauge, ``observe``→histogram), and every
  registered metric must have at least one resolved update site (a
  metric nobody ever moves is a dead dashboard row).  Receivers that
  resolve to nothing (``Event.set()``, domain ``observe()`` methods)
  are ignored, not guessed at.
* **docs**: ``*_total``/``*_seconds`` tokens in the doc files must
  match a registered name -- exactly, by a registered f-string family
  prefix, or as an ellipsis-abbreviated suffix (``…rebuilds_total``).

F-string names like ``f"runtime_io_shed_{op}_total"`` are tracked as a
*family* by their literal prefix; families satisfy the dead-metric and
doc checks for any matching name.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..engine import Finding, LintRule, Project, register

#: metric kind -> its one legal update method
_UPDATE_OF = {"counter": "inc", "gauge": "set", "histogram": "observe"}
_KIND_OF = {v: k for k, v in _UPDATE_OF.items()}

#: a metric name: ("exact", "runtime_sweeps_total") or
#: ("family", "runtime_io_shed_") for literal-prefixed f-strings
_Spec = Tuple[str, str]

_DOC_TOKEN = re.compile(r"\b[a-z][a-z0-9_]*_(?:total|seconds)\b")


@dataclasses.dataclass
class _Registration:
    spec: _Spec
    kind: str
    path: str  # relative path for findings
    line: int
    col: int


def _name_spec(node: ast.expr) -> Optional[_Spec]:
    """Metric-name spec from a registration's name argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ("exact", node.value)
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(
                part.value, str
            ):
                prefix += part.value
            else:
                break
        if prefix:
            return ("family", prefix)
    return None


def _spec_label(spec: _Spec) -> str:
    kind, text = spec
    return text if kind == "exact" else f"{text}*"


@register
class MetricsDriftRule(LintRule):
    rule_id = "REP018"
    title = "metric names agree across registrations, updates, and docs"
    paper_ref = "§6 (monitoring gaps)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        #: receiver leaf names accepted as a metrics registry
        "registry_names": (
            "metrics",
            "_metrics",
            "registry",
            "_registry",
        ),
        #: module (by suffix) whose presence marks a real tree -- doc
        #: scanning only activates when it resolves
        "metrics_module": "runtime.metrics",
        #: doc files checked for stale metric names, relative to the
        #: project root (the pyproject.toml directory above the metrics
        #: module)
        "doc_files": ("README.md", "DESIGN.md", "EXPERIMENTS.md"),
    }

    # -- fact extraction ---------------------------------------------------

    def _is_registration(self, node: ast.AST) -> Optional[Tuple[_Spec, str]]:
        """(name spec, kind) when ``node`` registers a metric."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _UPDATE_OF
        ):
            return None
        receiver = node.func.value
        leaf = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id
            if isinstance(receiver, ast.Name)
            else None
        )
        if leaf not in tuple(self.options["registry_names"]):
            return None
        name_arg: Optional[ast.expr] = None
        if node.args:
            name_arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_arg = kw.value
        if name_arg is None:
            return None
        spec = _name_spec(name_arg)
        if spec is None:
            return None
        return spec, node.func.attr

    def _collect(self, project: Project):
        """(registrations, updates) across the whole project.

        ``updates`` are (spec, kind-of-handle, update-method, path, node)
        for every ``.inc/.set/.observe`` whose receiver resolved.
        """
        registrations: List[_Registration] = []
        updates: List[Tuple[_Spec, str, str, str, ast.AST]] = []

        # pass 1: registrations + handle maps
        #   (module, class) -> attr -> (spec, kind)
        attr_handles: Dict[Tuple[str, str], Dict[str, Tuple[_Spec, str]]] = {}
        symbols = project.analysis.symbols
        for source in project.files:
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                reg = self._is_registration(node)
                if reg is not None:
                    registrations.append(
                        _Registration(
                            spec=reg[0],
                            kind=reg[1],
                            path=source.rel,
                            line=node.lineno,
                            col=node.col_offset + 1,
                        )
                    )
        for info in symbols.functions.values():
            if info.owner is None:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                reg = self._is_registration(node.value)
                if reg is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_handles.setdefault(
                            (info.module, info.owner), {}
                        )[target.attr] = reg

        # pass 2: update sites, resolved through the three handle forms
        def updates_in(
            tree: ast.AST,
            source_rel: str,
            locals_map: Mapping[str, Tuple[_Spec, str]],
            class_key: Optional[Tuple[str, str]],
        ) -> None:
            class_map = attr_handles.get(class_key, {}) if class_key else {}
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _KIND_OF
                ):
                    continue
                receiver = node.func.value
                resolved: Optional[Tuple[_Spec, str]] = None
                reg = self._is_registration(receiver)
                if reg is not None:
                    resolved = reg
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    resolved = class_map.get(receiver.attr)
                elif isinstance(receiver, ast.Name):
                    resolved = locals_map.get(receiver.id)
                if resolved is None:
                    continue  # not provably a metric handle
                updates.append(
                    (
                        resolved[0],
                        resolved[1],
                        node.func.attr,
                        source_rel,
                        node,
                    )
                )

        for info in symbols.functions.values():
            locals_map: Dict[str, Tuple[_Spec, str]] = {}
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    reg = self._is_registration(node.value)
                    if reg is not None:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                locals_map[target.id] = reg
            class_key = (
                (info.module, info.owner) if info.owner else None
            )
            updates_in(info.node, info.source.rel, locals_map, class_key)
        for source in project.files:  # module-level chained updates
            if source.tree is None:
                continue
            for stmt in source.tree.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    updates_in(stmt, source.rel, {}, None)

        return registrations, updates

    # -- the checks --------------------------------------------------------

    def check_project(self, project: Project) -> Iterable[Finding]:
        registrations, updates = self._collect(project)
        if not registrations:
            return

        # 1. one kind per name
        kind_of: Dict[_Spec, _Registration] = {}
        for reg in registrations:
            first = kind_of.setdefault(reg.spec, reg)
            if first.kind != reg.kind:
                yield Finding(
                    path=reg.path,
                    line=reg.line,
                    col=reg.col,
                    rule_id=self.rule_id,
                    message=(
                        f"metric {_spec_label(reg.spec)!r} registered as "
                        f"{reg.kind} here but as {first.kind} at "
                        f"{first.path}:{first.line}; one name, one kind"
                    ),
                )

        # 2. update method matches the handle's kind
        for spec, kind, method, path, node in updates:
            if _UPDATE_OF[kind] != method:
                yield Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"metric {_spec_label(spec)!r} is a {kind} but is "
                        f"updated with .{method}(); {kind}s support "
                        f".{_UPDATE_OF[kind]}()"
                    ),
                )

        # 3. every registered metric moves at least once
        updated_specs = {spec for spec, _, _, _, _ in updates}
        reported_dead: Set[_Spec] = set()
        for reg in registrations:
            if reg.spec in updated_specs or reg.spec in reported_dead:
                continue
            reported_dead.add(reg.spec)
            yield Finding(
                path=reg.path,
                line=reg.line,
                col=reg.col,
                rule_id=self.rule_id,
                message=(
                    f"metric {_spec_label(reg.spec)!r} is registered but "
                    f"no .{_UPDATE_OF[reg.kind]}() site resolves to it; "
                    f"dead metric or a renamed update path"
                ),
            )

        # 4. doc tables reference real metrics
        exacts = {t for k, t in kind_of if k == "exact"}
        families = {t for k, t in kind_of if k == "family"}
        for doc_path, doc_rel in self._doc_files(project):
            try:
                text = doc_path.read_text(encoding="utf-8")
            except OSError:
                continue
            for lineno, line in enumerate(text.splitlines(), start=1):
                for match in _DOC_TOKEN.finditer(line):
                    token = match.group(0)
                    if self._doc_token_ok(token, exacts, families):
                        continue
                    yield Finding(
                        path=doc_rel,
                        line=lineno,
                        col=match.start() + 1,
                        rule_id=self.rule_id,
                        message=(
                            f"doc references metric {token!r} but no "
                            f"registration matches it; stale name in the "
                            f"counter table"
                        ),
                    )

    @staticmethod
    def _doc_token_ok(
        token: str, exacts: Set[str], families: Set[str]
    ) -> bool:
        if token in exacts:
            return True
        # ellipsis-abbreviated doc names ("…rebuilds_total") surface as
        # a suffix of the real name
        if any(name.endswith("_" + token) for name in exacts):
            return True
        return any(token.startswith(prefix) for prefix in families)

    def _doc_files(
        self, project: Project
    ) -> Iterable[Tuple[pathlib.Path, str]]:
        """(absolute path, findings-relative path) per existing doc file.

        Anchored on the metrics module so fixture trees without one never
        scan the enclosing real repo's docs.
        """
        metrics_src = project.module_by_suffix(
            str(self.options["metrics_module"])
        )
        if metrics_src is None:
            return
        root = metrics_src.path.resolve().parent
        for _ in range(6):
            if (root / "pyproject.toml").exists():
                break
            if root.parent == root:
                return
            root = root.parent
        else:
            return
        for name in tuple(self.options["doc_files"]):
            doc = root / name
            if doc.exists():
                yield doc, name

    def cache_closure(self, project: Project) -> Optional[List[str]]:
        """Update sites can live anywhere, so the closure is every project
        module -- plus the doc files (raw paths, statted by the cache)."""
        deps: List[str] = sorted(
            f.module for f in project.files if f.module is not None
        )
        for doc, _ in self._doc_files(project):
            deps.append(doc.as_posix())
        return deps
