"""REP014: shard-safety race detector over the call graph.

The sharded runtime (``ShardedLocator`` and friends) is the repro's path
to the paper's production scale, and the ROADMAP's next step is moving
shards into separate processes.  Anything that works today only because
shards share one address space is a latent race / divergence bug:

* **module-level mutable globals** (dicts, lists, ``itertools.count``
  singletons) referenced from code reachable off a shard entry point --
  per-process copies will drift apart;
* **mutable class-body attributes** (``class X: cache = {}``) on classes
  used from shard paths -- shared across instances now, duplicated
  across processes later;
* **post-construction writes to shard-shared objects** -- methods of the
  classes that straddle the shard boundary (router, sharded tree)
  mutating ``self`` after ``__init__``, which is exactly the state that
  would need cross-process coordination.

Every finding is annotated with the shard entry point that reaches the
offending code and the call-chain witness, so a report reads as "this
runs inside a shard" rather than "this exists somewhere".
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Any, Dict, Iterable, List, Mapping, Set, Tuple

from ..engine import Finding, LintRule, Project, register

#: method names that mutate the receiver container in place
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

_CTOR_METHODS = ("__init__", "__post_init__", "__new__")


@register
class ShardSafetyRule(LintRule):
    rule_id = "REP014"
    title = "no shared mutable state on shard code paths"
    paper_ref = "§4.2 (sharded locating)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        #: ``module-glob:qualname-glob`` patterns naming the functions a
        #: shard (or the runtime driving shards) starts executing from
        "entry_points": (
            "*runtime.service:RuntimeService.*",
            "*gateway.service:GatewayService.*",
            "*:ShardedLocator.*",
            "*:SupervisedLocator.*",
            "*:MPShardedLocator.*",
            "*:MPSupervisedLocator.*",
            "*runtime.workers:_worker_main",
        ),
        #: class-name globs for objects shared across the shard boundary
        "shared_classes": (
            "ShardedAlertTree",
            "ShardRouter",
            "MPShardedAlertTree",
        ),
    }

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = project.analysis
        symbols = analysis.symbols
        callgraph = analysis.callgraph
        reach = callgraph.reachable(tuple(self.options["entry_points"]))
        if not reach:
            return

        # per-function name/attribute usage, computed once:
        # (names used, names *mutated* in place, attribute names stored)
        usage: Dict[str, Tuple[Set[str], Set[str], Set[str]]] = {}
        for key, info in symbols.functions.items():
            usage[key] = self._usage_of(info.node)

        yield from self._mutable_globals(symbols, reach, usage)
        yield from self._mutable_class_attrs(symbols, reach)
        yield from self._shared_writes(symbols, callgraph, reach)

    # -- module-level mutable globals --------------------------------------

    def _mutable_globals(self, symbols, reach, usage) -> Iterable[Finding]:
        for module in sorted(symbols.modules):
            table = symbols.modules[module]
            for name in sorted(table.globals):
                info = table.globals[name]
                if not info.mutable:
                    continue
                witness = self._global_witness(
                    symbols, reach, usage, module, name, info.kind
                )
                if witness is None:
                    continue
                chain, how = witness
                yield Finding(
                    path=table.source.rel,
                    line=info.line,
                    col=info.col,
                    rule_id=self.rule_id,
                    message=(
                        f"module-level mutable global {name} ({info.kind}) "
                        f"is {how} on a shard path; shard processes would "
                        f"each get their own copy "
                        f"[entry {self._chain_text(chain)}]"
                    ),
                )

    def _usage_of(self, func: ast.AST) -> Tuple[Set[str], Set[str], Set[str]]:
        names: Set[str] = set()
        mutated: Set[str] = set()
        attr_writes: Set[str] = set()

        def base_name(node: ast.AST) -> str:
            while isinstance(node, ast.Subscript):
                node = node.value
            return node.id if isinstance(node, ast.Name) else ""

        for node in ast.walk(func):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Global):
                names.update(node.names)
                mutated.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        mutated.add(base_name(target))
                    if isinstance(target, ast.Attribute) and isinstance(
                        node, ast.Assign
                    ):
                        attr_writes.add(target.attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        mutated.add(base_name(target))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    mutated.add(base_name(node.func.value))
        return names, mutated, attr_writes

    def _global_witness(self, symbols, reach, usage, module, name, kind):
        """(chain, how) for the first reachable function endangering a global.

        Read-only constant tables are fine to replicate per process; a
        global is a shard hazard only when reachable code *mutates* it --
        or when it is a stateful iterator (``itertools.count``/``cycle``)
        whose every read advances shared state.
        """
        stateful_read = kind in ("count", "cycle", "chain")
        for key in sorted(reach):
            info = symbols.functions.get(key)
            if info is None:
                continue
            names, mutated, attr_writes = usage[key]
            if info.module == module:
                if name in mutated:
                    return reach[key], f"mutated by {key}"
                if stateful_read and name in names:
                    return reach[key], f"advanced by {key}"
            elif name in attr_writes:
                # cross-module rebinds look like `mod.name = ...`
                return reach[key], f"rebound from {key}"
        return None

    # -- mutable class-body attributes -------------------------------------

    def _mutable_class_attrs(self, symbols, reach) -> Iterable[Finding]:
        for module in sorted(symbols.modules):
            table = symbols.modules[module]
            for cls_name in sorted(table.classes):
                cls = table.classes[cls_name]
                reached = [
                    m for m in sorted(cls.methods) if cls.methods[m].key in reach
                ]
                if not reached:
                    continue
                for attr in sorted(cls.attrs):
                    line, col, mutable, kind = cls.attrs[attr]
                    if not mutable:
                        continue
                    entry_key = cls.methods[reached[0]].key
                    yield Finding(
                        path=cls.source.rel,
                        line=line,
                        col=col,
                        rule_id=self.rule_id,
                        message=(
                            f"mutable class attribute {cls_name}.{attr} "
                            f"({kind}) on a class used from a shard path; "
                            f"instances share it within one process and "
                            f"diverge across processes "
                            f"[entry {self._chain_text(reach[entry_key])}]"
                        ),
                    )

    # -- post-construction writes to shard-shared objects ------------------

    def _shared_writes(self, symbols, callgraph, reach) -> Iterable[Finding]:
        patterns = tuple(self.options["shared_classes"])
        for module in sorted(symbols.modules):
            table = symbols.modules[module]
            for cls_name in sorted(table.classes):
                if not any(
                    fnmatch.fnmatchcase(cls_name, pat) for pat in patterns
                ):
                    continue
                cls = table.classes[cls_name]
                for method_name in sorted(cls.methods):
                    if method_name in _CTOR_METHODS:
                        continue
                    method = cls.methods[method_name]
                    if method.key not in reach:
                        continue
                    for line, col, what in self._self_writes(method.node):
                        yield Finding(
                            path=cls.source.rel,
                            line=line,
                            col=col,
                            rule_id=self.rule_id,
                            message=(
                                f"shard-shared {cls_name} is written after "
                                f"construction: {what} in {method.qualname}; "
                                f"this state straddles the shard boundary "
                                f"[entry {self._chain_text(reach[method.key])}]"
                            ),
                        )

    def _self_writes(self, func: ast.AST) -> List[Tuple[int, int, str]]:
        """(line, col, description) for each mutation of ``self`` state."""
        out: List[Tuple[int, int, str]] = []

        def self_attr(node: ast.AST) -> str:
            # `self.x` or a subscript of it, as "self.x"
            if isinstance(node, ast.Subscript):
                return self_attr(node.value)
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "self":
                return f"self.{node.attr}"
            return ""

        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = self_attr(target)
                    if name:
                        out.append(
                            (target.lineno, target.col_offset + 1,
                             f"assignment to {name}")
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = self_attr(target)
                    if name:
                        out.append(
                            (target.lineno, target.col_offset + 1,
                             f"del on {name}")
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    name = self_attr(node.func.value)
                    if name:
                        out.append(
                            (node.lineno, node.col_offset + 1,
                             f"{name}.{node.func.attr}(...)")
                        )
        return out

    @staticmethod
    def _chain_text(chain: List[str]) -> str:
        shown = chain if len(chain) <= 4 else chain[:2] + ["..."] + chain[-1:]
        out = []
        for key in shown:
            if key == "...":
                out.append(key)
            else:
                module, qualname = key.split(":", 1)
                out.append(f"{module.rsplit('.', 1)[-1]}:{qualname}")
        return " -> ".join(out)
