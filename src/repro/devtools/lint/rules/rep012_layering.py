"""REP012: package layering contracts over the resolved import graph.

The repro is layered so the deterministic pipeline stays deterministic
and the paper-facing packages stay paper-faithful: ``topology`` and
``syslogproc`` are base layers, ``core`` (the SkyNet locating pipeline)
sits on them, and presentation (``viz``), orchestration (``runtime``),
tooling (``devtools``) and evaluation (``baselines``, ``analysis``,
``rules``, ``operators``) sit above ``core``.  An import *down* the
stack is fine; an import *up* (``core`` importing ``viz``) drags
presentation concerns into the pipeline and, worse, can smuggle
nondeterminism or heavyweight deps into shard workers.

The contract is a declarative allowed-import matrix over the top-level
packages of the project root package.  Edges come from the project
import graph, so relative imports and ``__init__`` re-exports resolve to
the module that actually defines the symbol.  Packages absent from the
matrix are unconstrained (except that nothing may import ``tests``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from ..engine import Finding, LintRule, Project, register

#: package -> packages it may import (itself is always allowed).
DEFAULT_CONTRACTS: Mapping[str, Tuple[str, ...]] = {
    "topology": (),
    "syslogproc": (),
    "simulation": ("topology",),
    "monitors": ("topology", "simulation"),
    "core": ("topology", "syslogproc", "monitors", "simulation"),
    "viz": ("core", "topology"),
    "rules": ("core", "simulation", "topology"),
    "operators": ("core",),
    "baselines": ("core", "monitors", "rules", "simulation", "topology"),
    "analysis": ("core", "monitors", "simulation", "topology"),
    "runtime": ("core", "monitors", "simulation", "topology"),
    "devtools": ("topology",),
}


@register
class LayeringRule(LintRule):
    rule_id = "REP012"
    title = "package imports must follow the layering contracts"
    paper_ref = "§5 (repro architecture)"
    scope = "project"
    project_only = True
    default_options: Mapping[str, Any] = {
        #: top-level package whose subpackages the matrix constrains
        "root": "repro",
        #: package -> allowed imported packages (itself always allowed);
        #: packages not listed are unconstrained
        "contracts": DEFAULT_CONTRACTS,
        #: packages nothing may import, listed in the matrix or not
        "forbidden": ("tests",),
    }

    def _package(self, module: str) -> str:
        root = self.options["root"]
        parts = module.split(".")
        if parts[0] != root or len(parts) < 2:
            return ""
        return parts[1]

    def check_project(self, project: Project) -> Iterable[Finding]:
        contracts: Dict[str, Tuple[str, ...]] = dict(self.options["contracts"])
        forbidden = set(self.options["forbidden"])
        seen = set()  # one finding per (site, package pair): a package
        # edge and its re-export `via` edge should not double-report
        for record in project.analysis.imports.records:
            importer_pkg = self._package(record.importer)
            target_pkg = self._package(record.target)
            if not importer_pkg or not target_pkg or importer_pkg == target_pkg:
                continue
            site = (record.path, record.line, importer_pkg, target_pkg)
            if site in seen:
                continue
            seen.add(site)
            source = project.analysis.imports.file_of(record.importer)
            if source is None:
                continue
            if target_pkg in forbidden:
                yield Finding(
                    path=record.path,
                    line=record.line,
                    col=record.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{record.importer} imports forbidden package "
                        f"{self.options['root']}.{target_pkg} "
                        f"({record.raw})"
                    ),
                )
                continue
            if importer_pkg not in contracts:
                continue
            allowed = contracts[importer_pkg]
            if target_pkg not in allowed:
                shown = sorted(allowed) or ["nothing"]
                yield Finding(
                    path=record.path,
                    line=record.line,
                    col=record.col,
                    rule_id=self.rule_id,
                    message=(
                        f"layering violation: {importer_pkg} may not import "
                        f"{target_pkg} ({record.raw} resolves to "
                        f"{record.target}); {importer_pkg} may import only "
                        f"{', '.join(shown)}"
                    ),
                )
