"""Built-in skynet-lint rules.

Importing this package registers every rule module with the engine's
registry; add a new ``repNNN_*.py`` module and import it here to ship a
new rule.  The rule catalogue (id, check, motivating paper section)
lives in the README "Development" section -- the integration tests
assert the two stay in sync.
"""

from __future__ import annotations

from . import (  # noqa: F401
    rep001_alert_levels,
    rep002_locations,
    rep003_shadow_constants,
    rep004_determinism,
    rep005_mutable_defaults,
    rep006_monitor_registry,
    rep007_float_equality,
    rep008_type_annotations,
    rep009_alert_type_registry,
    rep010_monitor_cadence,
    rep011_exception_hygiene,
    rep012_layering,
    rep013_determinism_flow,
    rep014_shard_safety,
    rep015_config_drift,
    rep016_timing_literals,
    rep017_checkpoint_symmetry,
    rep018_metrics_drift,
    rep019_resource_safety,
)
