"""REP006: every monitor must be registered and name its Table-2 source.

Table 2 is the paper's inventory of the twelve monitoring tools; the
repro mirrors it in ``monitors/registry.py`` (``DATA_SOURCES`` plus the
§9 ``FUTURE_SOURCES``).  A ``Monitor`` subclass that is not wired into
the registry silently never polls -- ablations and coverage benches then
quietly run with a hole in them.  For each ``Monitor`` subclass under a
``monitors`` package this project-scoped rule checks that:

* the class declares a ``name = "<source>"`` class attribute;
* that source name is a ``DATA_SOURCES``/``FUTURE_SOURCES`` key;
* the class itself appears as a value in the registry's class maps.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..astutil import assigned_names, base_names
from ..engine import Finding, LintRule, Project, SourceFile, register

#: monitor-package modules that legitimately hold no registered monitor
_INFRA_MODULES = ("registry", "base", "stream", "__init__")


def _registry_inventory(registry: SourceFile) -> Dict[str, Set[str]]:
    """Source-name keys and registered class names from the registry AST."""
    source_names: Set[str] = set()
    class_names: Set[str] = set()
    assert registry.tree is not None
    for node in ast.walk(registry.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            names = assigned_names(node)
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            if any(n in ("DATA_SOURCES", "FUTURE_SOURCES") for n in names):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        source_names.add(key.value)
        if isinstance(node, ast.Dict):
            # class maps: any dict whose values are bare class names
            # (MONITOR_CLASSES and the dict built by _future_classes)
            for val in node.values:
                if isinstance(val, ast.Name):
                    class_names.add(val.id)
    return {"sources": source_names, "classes": class_names}


def _declared_name(cls: ast.ClassDef) -> Optional[str]:
    for stmt in cls.body:
        for bound in assigned_names(stmt):
            if bound == "name":
                value = stmt.value  # type: ignore[union-attr]
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


def _is_abstract(cls: ast.ClassDef) -> bool:
    if "ABC" in base_names(cls):
        return True
    for node in ast.walk(cls):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                deco_name = deco.attr if isinstance(deco, ast.Attribute) else \
                    deco.id if isinstance(deco, ast.Name) else None
                if deco_name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


@register
class MonitorRegistryRule(LintRule):
    rule_id = "REP006"
    title = "monitors must be registered with a Table-2 source name"
    paper_ref = "Table 2, §5.2"
    scope = "project"

    def cache_closure(self, project: Project) -> Optional[List[str]]:
        """Findings depend only on the monitors package and its imports.

        Keying the result cache on this closure lets edits elsewhere in
        the tree (core, runtime, viz, ...) reuse the cached REP006
        verdict instead of re-running it on every change.
        """
        monitor_modules = [
            f.module
            for f in project.files
            if f.module is not None and "monitors" in f.module.split(".")
        ]
        if not monitor_modules:
            return None  # unusual tree: stay conservative
        return sorted(
            project.analysis.imports.dependency_closure(monitor_modules)
        )

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry = project.module_by_suffix("monitors.registry")
        monitor_files: List[SourceFile] = [
            f
            for f in project.files
            if f.module is not None
            and "monitors" in f.module.split(".")[:-1]
            and f.module.rsplit(".", 1)[-1] not in _INFRA_MODULES
        ]
        if registry is None:
            if monitor_files:
                yield Finding(
                    path=monitor_files[0].rel,
                    line=1,
                    col=1,
                    rule_id=self.rule_id,
                    message="monitors package has no registry module "
                    "(monitors/registry.py) to register against",
                )
            return
        inventory = _registry_inventory(registry)
        for source in monitor_files:
            assert source.tree is not None
            for node in source.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if "Monitor" not in base_names(node) or _is_abstract(node):
                    continue
                declared = _declared_name(node)
                if declared is None:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"monitor {node.name} does not declare a "
                        f"'name = \"<source>\"' Table-2 source attribute",
                    )
                elif declared not in inventory["sources"]:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"monitor {node.name} declares source {declared!r} "
                        f"which is not a DATA_SOURCES/FUTURE_SOURCES key in "
                        f"{registry.rel}",
                    )
                if node.name not in inventory["classes"]:
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"monitor {node.name} is not registered in a class "
                        f"map of {registry.rel}",
                    )
