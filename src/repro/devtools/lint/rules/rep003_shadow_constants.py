"""REP003: paper constants live in ``core/config.py`` -- nowhere else.

The ``2/1+2/5`` incident thresholds and the 5-minute node / 15-minute
incident timeouts (§4.2, §6.3) are the paper's load-bearing numbers.
``repro.core.config`` is their single source of truth; a shadow literal
``300.0`` elsewhere drifts silently the day someone retunes the config.
The rule flags:

* numeric literals equal to a paper timeout (300/900 seconds) used as a
  default argument value or bound to a module/class-level name;
* string literals spelling an ``A/B+C/D`` threshold (e.g. ``"2/1+2/5"``)
  anywhere outside the config module.

Scoping: the simulator (``repro.simulation.*``) is excluded -- scenario
durations and failure windows legitimately use 300/900-second spans that
are *not* the paper's timeouts.  A literal with deliberately different
semantics (e.g. the 15-minute patrol polling period of Table 2) should
carry a ``# lint: allow REP003`` waiver explaining itself.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, Tuple

from ..astutil import is_number_constant
from ..engine import Finding, LintRule, SourceFile, register

_THRESHOLD_RE = re.compile(r"^\d+/\d+\+\d+/\d+$")


@register
class ShadowConstantRule(LintRule):
    rule_id = "REP003"
    title = "paper constants may only be defined in core/config.py"
    paper_ref = "§4.2, §6.3, Fig. 9"
    exclude_modules = (
        "repro.core.config",
        "repro.simulation.*",
        "repro.devtools.*",
    )
    default_options = {
        #: numeric paper constants (the 5-min and 15-min timeouts, seconds)
        "timeout_constants": (300, 900),
    }

    def _timeouts(self) -> Tuple[float, ...]:
        return tuple(float(v) for v in self.options["timeout_constants"])

    def _is_timeout_literal(self, node: ast.AST) -> bool:
        return is_number_constant(node) and float(node.value) in self._timeouts()  # type: ignore[attr-defined]

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        assert source.tree is not None
        tree = source.tree
        yield from self._check_bindings(source, tree, where="module")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_bindings(source, node, where=f"class {node.name}")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_defaults(source, node)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if _THRESHOLD_RE.match(node.value):
                    yield source.finding(
                        self.rule_id,
                        node,
                        f"shadow threshold spec {node.value!r}; build an "
                        f"IncidentThresholds from core/config.py instead",
                    )

    def _check_bindings(
        self, source: SourceFile, owner: ast.AST, where: str
    ) -> Iterator[Finding]:
        for stmt in ast.iter_child_nodes(owner):
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            if value is not None and self._is_timeout_literal(value):
                yield source.finding(
                    self.rule_id,
                    value,
                    f"paper timeout literal {value.value!r} bound at {where} "  # type: ignore[attr-defined]
                    f"level; import it from core/config.py",
                )

    def _check_defaults(self, source: SourceFile, func: ast.AST) -> Iterator[Finding]:
        args: ast.arguments = func.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if self._is_timeout_literal(default):
                yield source.finding(
                    self.rule_id,
                    default,
                    f"paper timeout literal {default.value!r} as default "  # type: ignore[attr-defined]
                    f"argument; import the value from core/config.py",
                )
