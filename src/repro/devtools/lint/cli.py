"""Command line for skynet-lint: ``python -m repro.devtools.lint``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .cache import DEFAULT_CACHE_FILE, run_with_cache
from .engine import LintEngine, UsageError, registered_rules


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip().upper() for token in raw.split(",") if token.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.devtools.lint",
        description="skynet-lint: domain-aware static analysis for the "
        "SkyNet reproduction (paper-constant, taxonomy, determinism and "
        "registry invariants).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits a SARIF 2.1.0 "
        "log suitable for code-scanning upload",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="enable whole-program analysis rules (import graph, "
        "determinism taint, shard safety, config drift)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the result cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        default=DEFAULT_CACHE_FILE,
        help=f"result cache location (default: {DEFAULT_CACHE_FILE})",
    )
    return parser


def _render_catalogue() -> str:
    lines = ["ID      Title                                                    Paper"]
    for cls in registered_rules():
        title = cls.title + (" [--project]" if cls.project_only else "")
        lines.append(f"{cls.rule_id:<7} {title:<56} {cls.paper_ref}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_render_catalogue())
        return 0
    try:
        engine = LintEngine(
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore) or (),
            project_mode=args.project,
        )
        if args.no_cache:
            report = engine.run(args.paths)
        else:
            report = run_with_cache(engine, args.paths, args.cache_file)
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(report))
    else:
        print(report.render_text())
    return 0 if report.ok else 1
