"""Incremental lint runs: an mtime/size result cache for skynet-lint.

The engine parses every file it checks; on a warm tree that parse cost
dominates, and almost nothing has changed between runs.  This module
caches a finished run in ``.skynet-lint-cache.json`` (gitignored) and on
the next run:

* **full hit** -- no file changed (mtime_ns + size both match) and the
  file *set* is identical: the whole report is rebuilt from the cache
  with zero parsing;
* **partial hit** -- some files changed: everything is re-parsed (the
  project-scoped rules legitimately need the whole tree -- a registry
  edit can change findings in *other* files), project rules re-run, but
  file-scoped rules only run over the changed files; unchanged files
  reuse their cached findings.

Soundness: file-scoped findings depend only on a file's own bytes plus
the rule set, and waivers live in the file itself, so mtime_ns + size
identity makes reuse exact.  The cache key also fingerprints the rule
set -- ids, resolved options, and each rule module's own stat -- so
editing a rule or passing different ``--select``/options invalidates
everything.  A corrupt or unreadable cache is ignored and rebuilt, never
an error.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .engine import (
    PARSE_ERROR_RULE,
    Finding,
    LintEngine,
    LintReport,
    Project,
    SourceFile,
)

#: default cache location, relative to the working directory
DEFAULT_CACHE_FILE = ".skynet-lint-cache.json"

_CACHE_VERSION = 1


def _stat_key(path: pathlib.Path) -> Optional[List[int]]:
    try:
        st = path.stat()
    except OSError:
        return None
    return [st.st_mtime_ns, st.st_size]


def ruleset_fingerprint(engine: LintEngine) -> str:
    """Hash of the engine's rule set: ids, options, and rule-module stats."""
    payload: List[Any] = []
    for rule in engine.rules:
        try:
            module_file = inspect.getfile(type(rule))
            module_stat = _stat_key(pathlib.Path(module_file))
        except (TypeError, OSError):
            module_file, module_stat = type(rule).__qualname__, None
        payload.append(
            [
                rule.rule_id,
                sorted((key, repr(value)) for key, value in rule.options.items()),
                module_file,
                module_stat,
            ]
        )
    blob = json.dumps([_CACHE_VERSION, payload], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _snapshot(stats: Dict[str, List[int]]) -> str:
    blob = json.dumps(sorted(stats.items()))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _load(cache_path: pathlib.Path, fingerprint: str) -> Dict[str, Any]:
    """The cached state, or a fresh empty one when missing/stale/corrupt."""
    empty: Dict[str, Any] = {"files": {}, "project": None}
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return empty
    if not isinstance(data, dict):
        return empty
    if data.get("version") != _CACHE_VERSION or data.get("fingerprint") != fingerprint:
        return empty
    files = data.get("files")
    project = data.get("project")
    if not isinstance(files, dict):
        return empty
    for entry in files.values():
        if not (
            isinstance(entry, dict)
            and isinstance(entry.get("stat"), list)
            and isinstance(entry.get("findings"), list)
        ):
            return empty
    if project is not None and not (
        isinstance(project, dict)
        and isinstance(project.get("snapshot"), str)
        and isinstance(project.get("findings"), list)
    ):
        return empty
    return {"files": files, "project": project}


def _revive(dicts: Sequence[Dict[str, Any]]) -> List[Finding]:
    out = []
    for d in dicts:
        out.append(
            Finding(
                path=str(d["path"]),
                line=int(d["line"]),
                col=int(d["col"]),
                rule_id=str(d["rule_id"]),
                message=str(d["message"]),
            )
        )
    return out


def _file_findings(engine: LintEngine, source: SourceFile) -> List[Finding]:
    """Parse-error plus file-scoped findings for one source, waiver-filtered."""
    if source.parse_error is not None:
        exc = source.parse_error
        return [
            Finding(
                path=source.rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    if source.skip_all:
        return []
    findings: List[Finding] = []
    for rule in engine.rules:
        if rule.scope != "file" or not rule.applies_to(source):
            continue
        for finding in rule.check_file(source):
            if not source.waived(finding.rule_id, finding.line):
                findings.append(finding)
    return findings


def _project_findings(engine: LintEngine, sources: Sequence[SourceFile]) -> List[Finding]:
    checkable = [s for s in sources if s.parse_error is None and not s.skip_all]
    by_path = {s.rel: s for s in checkable}
    project = Project(checkable)
    findings: List[Finding] = []
    for rule in engine.rules:
        if rule.scope != "project":
            continue
        for finding in rule.check_project(project):
            owner = by_path.get(finding.path)
            if owner is not None and owner.waived(finding.rule_id, finding.line):
                continue
            findings.append(finding)
    return findings


def run_with_cache(
    engine: LintEngine,
    paths: Sequence[Union[str, pathlib.Path]],
    cache_path: Union[str, pathlib.Path] = DEFAULT_CACHE_FILE,
) -> LintReport:
    """Like ``engine.run(paths)`` but memoised through ``cache_path``.

    Produces a report identical to an uncached run (the equivalence is
    pinned by tests/devtools/test_cache.py); only the work to get there
    differs.
    """
    cache_path = pathlib.Path(cache_path)
    discovered = LintEngine.discover(paths)
    fingerprint = ruleset_fingerprint(engine)
    cached = _load(cache_path, fingerprint)

    keyed: List[Tuple[pathlib.Path, str, Optional[List[int]]]] = []
    stats: Dict[str, List[int]] = {}
    for path in discovered:
        key = path.resolve().as_posix()
        stat = _stat_key(path)
        keyed.append((path, key, stat))
        if stat is not None:
            stats[key] = stat
    snapshot = _snapshot(stats)

    def hit(key: str, stat: Optional[List[int]]) -> bool:
        entry = cached["files"].get(key)
        return entry is not None and stat is not None and entry["stat"] == stat

    project_entry = cached["project"]
    if (
        all(hit(key, stat) for _, key, stat in keyed)
        and project_entry is not None
        and project_entry["snapshot"] == snapshot
    ):
        findings: List[Finding] = _revive(project_entry["findings"])
        for _, key, _ in keyed:
            findings.extend(_revive(cached["files"][key]["findings"]))
        return LintReport(
            findings=sorted(findings),
            files_checked=len(keyed),
            rules_run=[rule.rule_id for rule in engine.rules],
        )

    files_out: Dict[str, Any] = {}
    findings = []
    sources: List[SourceFile] = []
    for path, key, stat in keyed:
        source = SourceFile(path)
        sources.append(source)
        if hit(key, stat):
            per_file = _revive(cached["files"][key]["findings"])
        else:
            per_file = _file_findings(engine, source)
        findings.extend(per_file)
        if stat is not None:
            files_out[key] = {
                "stat": stat,
                "findings": [f.as_dict() for f in per_file],
            }
    project_found = _project_findings(engine, sources)
    findings.extend(project_found)

    payload = {
        "version": _CACHE_VERSION,
        "fingerprint": fingerprint,
        "files": files_out,
        "project": {
            "snapshot": snapshot,
            "findings": [f.as_dict() for f in project_found],
        },
    }
    try:
        tmp = cache_path.with_name(cache_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, cache_path)
    except OSError:
        pass  # a read-only tree just means the next run is cold again

    return LintReport(
        findings=sorted(findings),
        files_checked=len(keyed),
        rules_run=[rule.rule_id for rule in engine.rules],
    )
