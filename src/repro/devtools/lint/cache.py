"""Incremental lint runs: an mtime/size result cache for skynet-lint.

The engine parses every file it checks; on a warm tree that parse cost
dominates, and almost nothing has changed between runs.  This module
caches a finished run in ``.skynet-lint-cache.json`` (gitignored) and on
the next run:

* **full hit** -- no file changed (mtime_ns + size both match) and the
  file *set* is identical: the whole report is rebuilt from the cache
  with zero parsing;
* **partial hit** -- some files changed: everything is re-parsed (the
  project-scoped rules legitimately need the whole tree -- a registry
  edit can change findings in *other* files), file-scoped rules only run
  over the changed files, and each project rule re-runs only when its
  *dependency closure* changed.

Project rules cache per rule, keyed on the ``{resolved-path: [mtime_ns,
size]}`` map of the rule's dependency closure
(:meth:`~.engine.LintRule.cache_closure`, recomputed fresh each run from
the current import graph; ``None`` means "every linted file").  Editing
a file inside the closure, or adding/removing a closure member, changes
the map and re-runs the rule; editing an unrelated file reuses the
cached findings.  This fixes the old cross-file cache hole where *any*
edit re-ran *every* project rule.

Soundness: file-scoped findings depend only on a file's own bytes plus
the rule set, and waivers live in the file itself, so mtime_ns + size
identity makes reuse exact; project findings depend only on their
closure's bytes by the ``cache_closure`` contract.  The cache key also
fingerprints the rule set -- ids, resolved options, and the stat of
every module in the lint package itself (rules, engine, and the
whole-program analysis layer) -- so editing lint code or passing
different ``--select``/options invalidates everything.  A corrupt or
unreadable cache is ignored and rebuilt, never an error.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .engine import (
    PARSE_ERROR_RULE,
    Finding,
    LintEngine,
    LintReport,
    Project,
    SourceFile,
)

#: default cache location, relative to the working directory
DEFAULT_CACHE_FILE = ".skynet-lint-cache.json"

_CACHE_VERSION = 3


def _stat_key(path: pathlib.Path) -> Optional[List[int]]:
    try:
        st = path.stat()
    except OSError:
        return None
    return [st.st_mtime_ns, st.st_size]


def ruleset_fingerprint(engine: LintEngine) -> str:
    """Hash of the rule set: ids, options, and lint-package file stats."""
    payload: List[Any] = []
    for rule in engine.rules:
        try:
            module_file = inspect.getfile(type(rule))
            module_stat = _stat_key(pathlib.Path(module_file))
        except (TypeError, OSError):
            module_file, module_stat = type(rule).__qualname__, None
        payload.append(
            [
                rule.rule_id,
                sorted((key, repr(value)) for key, value in rule.options.items()),
                module_file,
                module_stat,
            ]
        )
    # project findings also depend on the analysis layer (and every rule
    # on the engine), so the whole lint package's stats join the key
    package_dir = pathlib.Path(__file__).resolve().parent
    package_stats = [
        [path.relative_to(package_dir).as_posix(), _stat_key(path)]
        for path in sorted(package_dir.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]
    blob = json.dumps(
        [_CACHE_VERSION, engine.project_mode, payload, package_stats],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _snapshot(stats: Dict[str, List[int]]) -> str:
    blob = json.dumps(sorted(stats.items()))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _load(cache_path: pathlib.Path, fingerprint: str) -> Dict[str, Any]:
    """The cached state, or a fresh empty one when missing/stale/corrupt."""
    empty: Dict[str, Any] = {"files": {}, "snapshot": None, "project_rules": {}}
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return empty
    if not isinstance(data, dict):
        return empty
    if data.get("version") != _CACHE_VERSION or data.get("fingerprint") != fingerprint:
        return empty
    files = data.get("files")
    project_rules = data.get("project_rules")
    if not isinstance(files, dict) or not isinstance(project_rules, dict):
        return empty
    for entry in files.values():
        if not (
            isinstance(entry, dict)
            and isinstance(entry.get("stat"), list)
            and isinstance(entry.get("findings"), list)
            and isinstance(entry.get("suppressed"), list)
        ):
            return empty
    for entry in project_rules.values():
        if not (
            isinstance(entry, dict)
            and isinstance(entry.get("deps"), dict)
            and isinstance(entry.get("findings"), list)
            and isinstance(entry.get("suppressed"), list)
        ):
            return empty
    snapshot = data.get("snapshot")
    if snapshot is not None and not isinstance(snapshot, str):
        return empty
    return {"files": files, "snapshot": snapshot, "project_rules": project_rules}


def _revive(dicts: Sequence[Dict[str, Any]]) -> List[Finding]:
    out = []
    for d in dicts:
        out.append(
            Finding(
                path=str(d["path"]),
                line=int(d["line"]),
                col=int(d["col"]),
                rule_id=str(d["rule_id"]),
                message=str(d["message"]),
            )
        )
    return out


def _file_findings(
    engine: LintEngine, source: SourceFile
) -> Tuple[List[Finding], List[Finding]]:
    """``(findings, suppressed)`` for one source, split by waiver."""
    if source.parse_error is not None:
        exc = source.parse_error
        return (
            [
                Finding(
                    path=source.rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            ],
            [],
        )
    if source.skip_all:
        return [], []
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in engine.rules:
        if rule.scope != "file" or not rule.applies_to(source):
            continue
        for finding in rule.check_file(source):
            if source.waived(finding.rule_id, finding.line):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def _closure_deps(
    rule: Any,
    project: Project,
    all_stats: Dict[str, List[int]],
) -> Dict[str, List[int]]:
    """Current ``{resolved-path: stat}`` map of one project rule's closure."""
    modules = rule.cache_closure(project)
    if modules is None:
        return dict(all_stats)
    deps: Dict[str, List[int]] = {}
    for dotted in modules:
        source = project.module(dotted)
        if source is None:
            # rules may put raw filesystem paths in their closure next to
            # dotted modules (REP018 depends on README/DESIGN doc files);
            # key them by path so doc edits re-run the rule.  An absolute
            # path that no longer exists stays keyed with a null stat so
            # deleting a closure member also invalidates.  Unresolvable
            # dotted names (a module outside the linted tree) are relative
            # and nonexistent, so they still drop out here.
            raw = pathlib.Path(dotted)
            if raw.exists() or raw.is_absolute():
                deps[raw.resolve().as_posix()] = _stat_key(raw) or [0, 0]
            continue
        key = source.path.resolve().as_posix()
        stat = all_stats.get(key) or _stat_key(source.path)
        if stat is not None:
            deps[key] = stat
    return deps


def _cache_path_problem(cache_path: pathlib.Path) -> Optional[str]:
    """Why ``cache_path`` cannot hold a cache, or ``None`` if it can.

    ``--cache-file .`` (or any directory, or a path in a missing or
    unwritable directory) used to blow up deep in the atomic-write dance;
    a bad cache location should cost a warning and a cold run, never a
    traceback.
    """
    if not cache_path.name:
        return "not a file name"
    if cache_path.is_dir():
        return "is a directory"
    parent = cache_path.parent
    if not parent.is_dir():
        return "parent directory does not exist"
    if not os.access(parent, os.W_OK):
        return "parent directory is not writable"
    return None


def run_with_cache(
    engine: LintEngine,
    paths: Sequence[Union[str, pathlib.Path]],
    cache_path: Union[str, pathlib.Path] = DEFAULT_CACHE_FILE,
) -> LintReport:
    """Like ``engine.run(paths)`` but memoised through ``cache_path``.

    Produces a report identical to an uncached run (the equivalence is
    pinned by tests/devtools/test_cache.py); only the work to get there
    differs.
    """
    cache_path = pathlib.Path(cache_path)
    problem = _cache_path_problem(cache_path)
    if problem is not None:
        print(
            f"skynet-lint: warning: --cache-file {cache_path}: {problem}; "
            "running without a cache",
            file=sys.stderr,
        )
        return engine.run(paths)
    discovered = LintEngine.discover(paths)
    fingerprint = ruleset_fingerprint(engine)
    cached = _load(cache_path, fingerprint)

    keyed: List[Tuple[pathlib.Path, str, Optional[List[int]]]] = []
    stats: Dict[str, List[int]] = {}
    for path in discovered:
        key = path.resolve().as_posix()
        stat = _stat_key(path)
        keyed.append((path, key, stat))
        if stat is not None:
            stats[key] = stat
    snapshot = _snapshot(stats)

    def hit(key: str, stat: Optional[List[int]]) -> bool:
        entry = cached["files"].get(key)
        return entry is not None and stat is not None and entry["stat"] == stat

    project_rule_ids = [r.rule_id for r in engine.rules if r.scope == "project"]
    if (
        all(hit(key, stat) for _, key, stat in keyed)
        and cached["snapshot"] == snapshot
        and all(rid in cached["project_rules"] for rid in project_rule_ids)
    ):
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        for rid in project_rule_ids:
            findings.extend(_revive(cached["project_rules"][rid]["findings"]))
            suppressed.extend(_revive(cached["project_rules"][rid]["suppressed"]))
        for _, key, _ in keyed:
            findings.extend(_revive(cached["files"][key]["findings"]))
            suppressed.extend(_revive(cached["files"][key]["suppressed"]))
        return LintReport(
            findings=sorted(engine._apply_supersedes(findings)),
            files_checked=len(keyed),
            rules_run=[rule.rule_id for rule in engine.rules],
            suppressed=sorted(suppressed),
        )

    files_out: Dict[str, Any] = {}
    findings = []
    suppressed = []
    sources: List[SourceFile] = []
    for path, key, stat in keyed:
        source = SourceFile(path)
        sources.append(source)
        if hit(key, stat):
            per_file = _revive(cached["files"][key]["findings"])
            per_file_supp = _revive(cached["files"][key]["suppressed"])
        else:
            per_file, per_file_supp = _file_findings(engine, source)
        findings.extend(per_file)
        suppressed.extend(per_file_supp)
        if stat is not None:
            files_out[key] = {
                "stat": stat,
                "findings": [f.as_dict() for f in per_file],
                "suppressed": [f.as_dict() for f in per_file_supp],
            }

    checkable = [s for s in sources if s.parse_error is None and not s.skip_all]
    by_path = {s.rel: s for s in checkable}
    project = Project(checkable)
    project_out: Dict[str, Any] = {}
    for rule in engine.rules:
        if rule.scope != "project":
            continue
        deps = _closure_deps(rule, project, stats)
        entry = cached["project_rules"].get(rule.rule_id)
        if entry is not None and entry["deps"] == deps:
            per_rule = _revive(entry["findings"])
            per_rule_supp = _revive(entry["suppressed"])
        else:
            per_rule = []
            per_rule_supp = []
            for finding in rule.check_project(project):
                owner = by_path.get(finding.path)
                if owner is not None and owner.waived(finding.rule_id, finding.line):
                    per_rule_supp.append(finding)
                else:
                    per_rule.append(finding)
        findings.extend(per_rule)
        suppressed.extend(per_rule_supp)
        project_out[rule.rule_id] = {
            "deps": deps,
            "findings": [f.as_dict() for f in per_rule],
            "suppressed": [f.as_dict() for f in per_rule_supp],
        }

    payload = {
        "version": _CACHE_VERSION,
        "fingerprint": fingerprint,
        "snapshot": snapshot,
        "files": files_out,
        "project_rules": project_out,
    }
    try:
        tmp = cache_path.with_name(cache_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, cache_path)
    except (OSError, ValueError):
        pass  # a read-only tree just means the next run is cold again

    return LintReport(
        findings=sorted(engine._apply_supersedes(findings)),
        files_checked=len(keyed),
        rules_run=[rule.rule_id for rule in engine.rules],
        suppressed=sorted(suppressed),
    )
