"""skynet-lint: the AST lint engine.

SkyNet's correctness rests on a handful of paper-mandated invariants --
the ``2/1+2/5`` incident thresholds, the 5-minute node / 15-minute
incident timeouts (§4.2), the three-level alert taxonomy and the
Region→Device location hierarchy (§4.1-§4.2).  In code these are easy to
shadow with a stray literal, and a typo silently corrupts incident
grouping instead of failing loudly.  This engine runs *domain-aware*
rules over the repository's ASTs so such defects are caught before
runtime, in the spirit of systematic alert-definition checking
(anti-pattern catalogues for industrial alert rules).

Architecture
------------

* :class:`SourceFile` -- one parsed module: text, AST, dotted module
  name, and per-line waivers (``# lint: allow REP003`` comments).
* :class:`Project` -- every source file of one lint run; project-scoped
  rules (e.g. REP006's registry cross-check) see all of them at once.
* :class:`LintRule` -- base class; subclasses declare ``rule_id``,
  ``title``, ``paper_ref`` and per-rule ``default_options``, and are
  registered via the :func:`register` decorator.
* :class:`LintEngine` -- discovers files, instantiates rules (with
  optional per-rule option overrides), runs them and returns a
  :class:`LintReport`.

Waivers: a finding is suppressed when its line carries a comment
``# lint: allow <RULE>[,<RULE>...]`` or ``# lint: allow all``; a file is
skipped entirely when any line carries ``# lint: skip-file``.  Waivers
are deliberate, reviewable exceptions -- use them for constants that
*look* like paper constants but have distinct semantics.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import fnmatch
import json
import pathlib
import re
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

#: Rule id reserved for engine-level problems (unparsable files).
PARSE_ERROR_RULE = "REP000"

_RULE_ID_RE = re.compile(r"^REP\d{3}$")
_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\s+([A-Za-z0-9_, ]+)")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")


class UsageError(Exception):
    """Bad invocation: unknown rule ids, missing paths, bad options."""


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into report order."""

    path: str  # file path as given/discovered, posix-style
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class SourceFile:
    """One parsed Python source file plus its lint metadata."""

    def __init__(self, path: pathlib.Path, text: Optional[str] = None):
        self.path = path
        if text is None:
            text = path.read_text(encoding="utf-8")
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.rel = path.as_posix()
        self.module = _module_name(path)
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = exc
        self.skip_all = any(_SKIP_FILE_RE.search(line) for line in self.lines)
        self._waivers: Dict[int, FrozenSet[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _WAIVER_RE.search(line)
            if match:
                ids = frozenset(
                    token.strip().upper()
                    for token in match.group(1).replace(",", " ").split()
                    if token.strip()
                )
                self._waivers[lineno] = ids

    def waived(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is waived on ``line`` (or file-wide)."""
        if self.skip_all:
            return True
        ids = self._waivers.get(line, frozenset())
        return rule_id.upper() in ids or "ALL" in ids

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` in this file."""
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )

    def __repr__(self) -> str:
        return f"SourceFile({self.rel!r}, module={self.module!r})"


def _module_name(path: pathlib.Path) -> Optional[str]:
    """Dotted module name, derived by climbing ``__init__.py`` parents.

    Returns ``None`` for standalone scripts/fixtures outside any package;
    rules treat such files as always in scope so fixture snippets exercise
    every rule regardless of where they live.
    """
    path = path.resolve()
    if path.name == "__init__.py":
        parts: List[str] = []
        current = path.parent
    else:
        parts = [path.stem]
        current = path.parent
    package_seen = False
    while (current / "__init__.py").exists():
        package_seen = True
        parts.append(current.name)
        current = current.parent
    if not package_seen and path.name != "__init__.py":
        return None
    return ".".join(reversed(parts)) if parts else None


class Project:
    """All source files of one lint run, for project-scoped rules."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files: List[SourceFile] = list(files)
        self._by_module: Dict[str, SourceFile] = {
            f.module: f for f in self.files if f.module is not None
        }
        self._analysis: Optional[Any] = None

    def module(self, dotted: str) -> Optional[SourceFile]:
        return self._by_module.get(dotted)

    def modules_matching(self, pattern: str) -> List[SourceFile]:
        """Files whose dotted module name matches the fnmatch ``pattern``."""
        return [
            f
            for f in self.files
            if f.module is not None and fnmatch.fnmatchcase(f.module, pattern)
        ]

    def module_by_suffix(self, suffix: str) -> Optional[SourceFile]:
        """The unique file whose module name equals or ends with ``suffix``."""
        hits = [
            f
            for f in self.files
            if f.module is not None
            and (f.module == suffix or f.module.endswith("." + suffix))
        ]
        return hits[0] if len(hits) == 1 else None

    @property
    def analysis(self) -> "Any":
        """Shared whole-program facts (import graph, symbols, call graph).

        Built lazily on first access so runs with only file-scoped rules
        never pay for it.  Typed loosely to keep the import local: the
        ``project`` subpackage imports this module.
        """
        if self._analysis is None:
            from .project import ProjectAnalysis

            self._analysis = ProjectAnalysis(self)
        return self._analysis


class LintRule(abc.ABC):
    """Base class for all lint rules.

    Subclasses set the class attributes below and implement either
    :meth:`check_file` (``scope = "file"``) or :meth:`check_project`
    (``scope = "project"``).  ``default_options`` documents every knob a
    rule accepts; unknown overrides raise :class:`UsageError` so config
    typos fail loudly.
    """

    rule_id: str = ""
    title: str = ""
    #: Paper section that motivates the rule, e.g. "§4.2".
    paper_ref: str = ""
    scope: str = "file"  # "file" | "project"
    #: project-scoped rules that need the whole-program analysis layer;
    #: they only run when the engine is built with ``project_mode=True``
    #: (the CLI's ``--project``), so plain file runs stay cheap.
    project_only: bool = False
    #: rule ids whose findings this rule replaces at the same (path, line)
    #: when both rules report there -- e.g. REP013 supersedes REP004 so a
    #: wall-clock call site that provably flows into an incident field is
    #: reported once, with the flow message.
    supersedes: Tuple[str, ...] = ()
    #: fnmatch patterns over dotted module names; empty = all modules.
    include_modules: Tuple[str, ...] = ()
    exclude_modules: Tuple[str, ...] = ()
    default_options: Mapping[str, Any] = {}

    def __init__(self, **options: Any):
        unknown = sorted(set(options) - set(self.default_options))
        if unknown:
            raise UsageError(
                f"{self.rule_id}: unknown option(s) {unknown}; "
                f"accepts {sorted(self.default_options)}"
            )
        self.options: Dict[str, Any] = {**self.default_options, **options}

    def applies_to(self, source: SourceFile) -> bool:
        """Module-pattern scoping; standalone files are always in scope."""
        if source.module is None:
            return True
        module = source.module
        if self.include_modules and not any(
            fnmatch.fnmatchcase(module, pat) for pat in self.include_modules
        ):
            return False
        return not any(
            fnmatch.fnmatchcase(module, pat) for pat in self.exclude_modules
        )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def cache_closure(self, project: Project) -> Optional[Sequence[str]]:
        """Dotted modules this project rule's findings depend on.

        ``None`` (the default) means "every linted file" -- always sound.
        Project rules that only inspect a subgraph can return the module
        names of that subgraph (typically an import-graph dependency
        closure) so the result cache survives edits to unrelated files.
        Only consulted for ``scope == "project"`` rules.
        """
        return None


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r}, want 'REPnnn'")
    if cls.rule_id == PARSE_ERROR_RULE:
        raise ValueError(f"{PARSE_ERROR_RULE} is reserved for parse errors")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.scope not in ("file", "project"):
        raise ValueError(f"{cls.rule_id}: bad scope {cls.scope!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> List[Type[LintRule]]:
    """Every registered rule class, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule module.
    from . import rules  # noqa: F401


@dataclasses.dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]
    #: findings waived by ``# lint: allow`` comments -- kept so formats
    #: with a suppression concept (SARIF) can report them as suppressed
    #: instead of losing them entirely
    suppressed: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule_id, []).append(finding)
        return grouped

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_checked} file(s) "
            f"({len(self.rules_run)} rules)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "rules_run": self.rules_run,
                "findings": [f.as_dict() for f in self.findings],
                "suppressed": [f.as_dict() for f in self.suppressed],
            },
            indent=2,
        )


class LintEngine:
    """Discovers files, runs rules, filters waivers, reports findings."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Sequence[str] = (),
        rule_options: Optional[Mapping[str, Mapping[str, Any]]] = None,
        rules: Optional[Sequence[LintRule]] = None,
        project_mode: bool = False,
    ):
        rule_options = rule_options or {}
        self.project_mode = project_mode
        if rules is not None:
            self.rules: List[LintRule] = list(rules)
        else:
            available = {cls.rule_id: cls for cls in registered_rules()}
            wanted = list(available) if select is None else list(select)
            unknown = [rid for rid in list(wanted) + list(ignore) if rid not in available]
            if unknown:
                raise UsageError(
                    f"unknown rule id(s) {sorted(set(unknown))}; "
                    f"available: {sorted(available)}"
                )
            if not project_mode and select is not None:
                needs_project = sorted(
                    rid
                    for rid in set(wanted) - set(ignore)
                    if available[rid].project_only
                )
                if needs_project:
                    raise UsageError(
                        f"rule(s) {needs_project} need whole-program "
                        f"analysis; run with --project"
                    )
            bad_opts = sorted(set(rule_options) - set(available))
            if bad_opts:
                raise UsageError(f"options given for unknown rule(s) {bad_opts}")
            self.rules = [
                available[rid](**dict(rule_options.get(rid, {})))
                for rid in sorted(set(wanted) - set(ignore))
                if project_mode or not available[rid].project_only
            ]

    # -- discovery ---------------------------------------------------------

    @staticmethod
    def discover(paths: Sequence[Union[str, pathlib.Path]]) -> List[pathlib.Path]:
        """Expand files/directories into a sorted, deduplicated file list."""
        out: List[pathlib.Path] = []
        seen = set()
        for raw in paths:
            path = pathlib.Path(raw)
            if not path.exists():
                raise UsageError(f"no such file or directory: {path}")
            candidates: Iterator[pathlib.Path]
            if path.is_dir():
                candidates = iter(sorted(path.rglob("*.py")))
            else:
                candidates = iter([path])
            for candidate in candidates:
                if "__pycache__" in candidate.parts:
                    continue
                key = candidate.resolve()
                if key not in seen:
                    seen.add(key)
                    out.append(candidate)
        return out

    # -- running -----------------------------------------------------------

    def run(self, paths: Sequence[Union[str, pathlib.Path]]) -> LintReport:
        files = [SourceFile(path) for path in self.discover(paths)]
        return self.run_sources(files)

    def run_sources(self, files: Sequence[SourceFile]) -> LintReport:
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        checkable: List[SourceFile] = []
        for source in files:
            if source.parse_error is not None:
                exc = source.parse_error
                findings.append(
                    Finding(
                        path=source.rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule_id=PARSE_ERROR_RULE,
                        message=f"syntax error: {exc.msg}",
                    )
                )
            elif not source.skip_all:
                checkable.append(source)
        by_path: Dict[str, SourceFile] = {f.rel: f for f in checkable}
        project = Project(checkable)
        for rule in self.rules:
            raw: List[Finding] = []
            if rule.scope == "project":
                raw.extend(rule.check_project(project))
            else:
                for source in checkable:
                    if rule.applies_to(source):
                        raw.extend(rule.check_file(source))
            for finding in raw:
                owner = by_path.get(finding.path)
                if owner is not None and owner.waived(finding.rule_id, finding.line):
                    suppressed.append(finding)
                    continue
                findings.append(finding)
        findings = self._apply_supersedes(findings)
        return LintReport(
            findings=sorted(findings),
            files_checked=len(files),
            rules_run=[rule.rule_id for rule in self.rules],
            suppressed=sorted(suppressed),
        )

    def _apply_supersedes(self, findings: List[Finding]) -> List[Finding]:
        """Drop findings replaced by a superseding rule at the same site."""
        superseders = {
            rule.rule_id: rule.supersedes for rule in self.rules if rule.supersedes
        }
        if not superseders:
            return findings
        drops = set()
        for finding in findings:
            for superseded in superseders.get(finding.rule_id, ()):
                drops.add((superseded, finding.path, finding.line))
        return [
            f for f in findings if (f.rule_id, f.path, f.line) not in drops
        ]
