"""SARIF 2.1.0 output for skynet-lint (``--format sarif``).

One run object: the driver carries the full rule catalogue (id, title,
paper reference) so code-scanning UIs can group and describe findings;
each finding becomes a ``result`` with a physical location region; each
``# lint: allow``-waived finding is still emitted, flagged with an
``inSource`` suppression, so waivers show up as reviewed-and-dismissed
instead of silently vanishing from the scan.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Type

from .engine import PARSE_ERROR_RULE, Finding, LintReport, LintRule, registered_rules

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_entries(report: LintReport) -> List[Dict[str, Any]]:
    """Driver rule metadata for every rule the run involved."""
    by_id: Dict[str, Type[LintRule]] = {
        cls.rule_id: cls for cls in registered_rules()
    }
    wanted = list(report.rules_run)
    seen = set(wanted)
    for finding in [*report.findings, *report.suppressed]:
        if finding.rule_id not in seen:
            seen.add(finding.rule_id)
            wanted.append(finding.rule_id)
    entries: List[Dict[str, Any]] = []
    for rule_id in wanted:
        cls = by_id.get(rule_id)
        if cls is not None:
            entry: Dict[str, Any] = {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": cls.title},
                "properties": {
                    "paperRef": cls.paper_ref,
                    "scope": cls.scope,
                },
            }
        elif rule_id == PARSE_ERROR_RULE:
            entry = {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": "file failed to parse"},
            }
        else:
            entry = {"id": rule_id, "name": rule_id}
        entries.append(entry)
    return entries


def _result(
    finding: Finding, rule_index: Dict[str, int], suppressed: bool
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }
    if suppressed:
        out["suppressions"] = [
            {
                "kind": "inSource",
                "justification": "waived with a '# lint: allow' comment",
            }
        ]
    return out


def report_to_sarif(report: LintReport) -> Dict[str, Any]:
    """The full SARIF log object for one lint run."""
    rules = _rule_entries(report)
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [_result(f, rule_index, suppressed=False) for f in report.findings]
    results.extend(
        _result(f, rule_index, suppressed=True) for f in report.suppressed
    )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "skynet-lint",
                        "informationUri": (
                            "https://github.com/skynet-repro/skynet"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=False)


__all__ = ["render_sarif", "report_to_sarif"]
