"""Nondeterminism source inventory shared by REP004 and REP013.

One catalogue of "APIs whose values differ between two runs of the same
program": wall clocks, the process-global RNG, OS-entropy-seeded RNG
construction, and environment reads.  The per-file REP004 rule flags any
*call* to these outside the simulation kernel; the whole-program REP013
rule tracks their *values* along the call graph into incident identity
and journal writes.  Keeping the inventory in one module guarantees the
two rules can never disagree about what counts as a clock.
"""

from __future__ import annotations

#: Wall-clock reads, as dotted call names.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Module-level functions of ``random`` driven by the shared global RNG.
GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "triangular",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "seed",
    }
)

#: Environment reads: contents differ between hosts and shard processes.
ENVIRON_CALLS = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.environ.setdefault",
        "os.environb.get",
    }
)

#: ``numpy.random`` module-level draws (the global numpy RNG).
NUMPY_RANDOM_PREFIXES = ("numpy.random.", "np.random.")


def classify_source_call(dotted: str) -> str:
    """Source kind for a dotted call name, or ``""`` when deterministic.

    Kinds: ``wall-clock``, ``global-rng``, ``environ``.  Unseeded
    ``random.Random()`` and unordered-iteration sources are structural
    (they need the call's arguments or the surrounding statement) and are
    classified by the callers, not here.
    """
    if dotted in CLOCK_CALLS:
        return "wall-clock"
    if dotted.startswith("random.") and dotted[len("random."):] in GLOBAL_RNG_FUNCS:
        return "global-rng"
    if dotted.startswith(NUMPY_RANDOM_PREFIXES):
        return "global-rng"
    if dotted in ENVIRON_CALLS:
        return "environ"
    return ""
