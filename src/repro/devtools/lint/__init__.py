"""skynet-lint: domain-aware static analysis for the SkyNet repro.

Public API::

    from repro.devtools.lint import LintEngine
    report = LintEngine().run(["src"])
    assert report.ok, report.render_text()

Run from the shell as ``python -m repro.devtools.lint [paths]``.
"""

from __future__ import annotations

from .cache import DEFAULT_CACHE_FILE, run_with_cache
from .engine import (
    Finding,
    LintEngine,
    LintReport,
    LintRule,
    Project,
    SourceFile,
    UsageError,
    register,
    registered_rules,
)

__all__ = [
    "DEFAULT_CACHE_FILE",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintRule",
    "Project",
    "SourceFile",
    "UsageError",
    "register",
    "registered_rules",
    "run_with_cache",
]
