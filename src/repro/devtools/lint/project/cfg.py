"""Per-function control-flow graphs for the flow-sensitive rules.

The AST-pattern rules (REP001-REP011) and the summary-based project
passes (REP012-REP015) answer "does this syntax occur" and "can this
value reach that sink"; they cannot answer "does this happen on *every*
path" -- which is exactly the shape of the last unchecked invariants:
a checkpoint key written only under a version gate, a file handle whose
``close()`` sits after a statement that can raise.  This module builds a
statement-granular CFG per function so the :mod:`.flow` solvers can
reason about paths, including the exceptional ones.

Shape
-----

* One :class:`Block` per simple statement (plus synthetic ``entry``,
  ``exit``, loop/try plumbing blocks).  Compound statements contribute a
  *header* block holding the compound node (the ``if``/``while`` test,
  the ``for`` iterable, the ``with`` context expressions); their bodies
  nest recursively.
* :class:`Edge` s are kinded: ``flow`` (fallthrough), ``true``/``false``
  (branch outcomes), ``loop`` (back edge), ``break``/``continue``,
  ``return``, ``exception``/``raise``.  Analyses that only care about
  normal termination filter the exceptional kinds out
  (:data:`EXCEPTIONAL_KINDS`).
* Every statement that can plausibly raise gets an ``exception`` edge to
  the innermost handler construct -- the ``except`` dispatch of an
  enclosing ``try``, or its ``finally`` -- and ultimately to ``exit``
  when nothing intervenes.  That is deliberately conservative: for the
  resource rule a missed unwind path is a missed leak.

``try``/``finally`` uses the classic single-instance approximation: the
``finally`` body is built once, with edges out to the normal
continuation, to the propagating-exception target, and to any
``return``/``break``/``continue`` continuation that routed through it.
This adds infeasible paths (a normal completion "seeing" the break
continuation) but never hides a real one -- sound for the may-analyses
and for must-analyses used as "flag when NOT guaranteed".
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Edge kinds that only occur while an exception is unwinding.
EXCEPTIONAL_KINDS: FrozenSet[str] = frozenset({"exception", "raise"})

#: Exception names treated as catch-alls for routing purposes.  A bare
#: ``except:`` and ``except BaseException`` truly catch everything;
#: ``except Exception`` is included because the escapees (KeyboardInterrupt,
#: SystemExit) abort the process anyway -- no analysis downstream should
#: count on surviving them.
_CATCH_ALL_NAMES = frozenset({"BaseException", "Exception"})


@dataclasses.dataclass(frozen=True)
class Edge:
    """One control transfer between blocks."""

    src: int
    dst: int
    kind: str


@dataclasses.dataclass
class Block:
    """One CFG node: zero or one statements plus incident edges."""

    id: int
    label: str  # "entry" | "exit" | "stmt" | "test" | "except" | "finally" | ...
    stmts: List[ast.stmt] = dataclasses.field(default_factory=list)

    @property
    def stmt(self) -> Optional[ast.stmt]:
        return self.stmts[0] if self.stmts else None

    @property
    def line(self) -> int:
        return self.stmts[0].lineno if self.stmts else 0


class CFG:
    """A control-flow graph; build via :func:`build_cfg` or programmatically.

    The programmatic surface (``add_block``/``add_edge``) exists so the
    dataflow solver can be exercised on synthetic graphs (the Hypothesis
    random-DAG fixpoint battery) without round-tripping through source.
    """

    def __init__(self, func: Optional[ast.AST] = None):
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self.edges: List[Edge] = []
        self._succ: Dict[int, List[Edge]] = {}
        self._pred: Dict[int, List[Edge]] = {}
        self._edge_seen: Set[Tuple[int, int, str]] = set()
        self.entry: int = self.add_block("entry")
        self.exit: int = self.add_block("exit")
        #: names bound by ``with ... as name`` (context-managed resources)
        self.managed_names: Set[str] = set()

    # -- construction ------------------------------------------------------

    def add_block(self, label: str, stmt: Optional[ast.stmt] = None) -> int:
        bid = len(self.blocks)
        self.blocks[bid] = Block(
            id=bid, label=label, stmts=[stmt] if stmt is not None else []
        )
        self._succ[bid] = []
        self._pred[bid] = []
        return bid

    def add_edge(self, src: int, dst: int, kind: str = "flow") -> None:
        key = (src, dst, kind)
        if key in self._edge_seen:
            return
        self._edge_seen.add(key)
        edge = Edge(src, dst, kind)
        self.edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)

    # -- queries -----------------------------------------------------------

    def block_ids(self) -> List[int]:
        return sorted(self.blocks)

    def succs(self, bid: int, include_exceptional: bool = True) -> List[Edge]:
        out = self._succ.get(bid, [])
        if include_exceptional:
            return list(out)
        return [e for e in out if e.kind not in EXCEPTIONAL_KINDS]

    def preds(self, bid: int, include_exceptional: bool = True) -> List[Edge]:
        out = self._pred.get(bid, [])
        if include_exceptional:
            return list(out)
        return [e for e in out if e.kind not in EXCEPTIONAL_KINDS]

    def reachable_from_entry(self, include_exceptional: bool = True) -> Set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            current = stack.pop()
            for edge in self.succs(current, include_exceptional):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return seen

    def blocks_of(self, pred) -> List[Block]:
        """Blocks whose (single) statement satisfies ``pred``, in id order."""
        return [
            block
            for bid, block in sorted(self.blocks.items())
            if block.stmt is not None and pred(block.stmt)
        ]


# -- builder ---------------------------------------------------------------

#: statements that can never raise at runtime
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)

#: open ends waiting for the next block: (block id, edge kind)
_Opens = List[Tuple[int, str]]


def _may_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, _NO_RAISE):
        return False
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        value = stmt.value
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        if (
            isinstance(value, ast.Constant)
            and all(isinstance(t, ast.Name) for t in targets)
        ):
            return False  # `x = 3` cannot raise
    return True


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    leaf = node.attr if isinstance(node, ast.Attribute) else (
        node.id if isinstance(node, ast.Name) else None
    )
    return leaf in _CATCH_ALL_NAMES


@dataclasses.dataclass
class _LoopFrame:
    header: int
    breaks: _Opens = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class _FinallyFrame:
    entry: int
    exit: int


@dataclasses.dataclass
class _ExceptFrame:
    dispatch: int


_Frame = object  # _LoopFrame | _FinallyFrame | _ExceptFrame


class _Builder:
    def __init__(self, func: ast.AST):
        self.cfg = CFG(func)
        self._frames: List[_Frame] = []

    def build(self) -> CFG:
        body = getattr(self.cfg.func, "body", [])
        opens = self._seq(body, [(self.cfg.entry, "flow")])
        self._connect(opens, self.cfg.exit)
        return self.cfg

    # -- plumbing ----------------------------------------------------------

    def _connect(self, opens: _Opens, dst: int) -> None:
        for src, kind in opens:
            self.cfg.add_edge(src, dst, kind)

    def _exception_target(self) -> int:
        """Innermost construct that observes an exception, else exit."""
        for frame in reversed(self._frames):
            if isinstance(frame, _ExceptFrame):
                return frame.dispatch
            if isinstance(frame, _FinallyFrame):
                return frame.entry
        return self.cfg.exit

    def _raise_edge(self, bid: int, kind: str = "exception") -> None:
        self.cfg.add_edge(bid, self._exception_target(), kind)

    def _unwind_through_finallys(
        self, bid: int, frames: Sequence[_Frame], final_dst: int, kind: str
    ) -> None:
        """Route a return/break/continue through every intervening finally.

        ``frames`` are the frames the jump escapes, innermost first; the
        chain runs ``bid -> fin1 -> fin2 -> ... -> final_dst``.
        """
        fins = [f for f in frames if isinstance(f, _FinallyFrame)]
        current = bid
        for fin in fins:
            self.cfg.add_edge(current, fin.entry, kind)
            current = fin.exit
        self.cfg.add_edge(current, final_dst, kind)

    # -- statement dispatch ------------------------------------------------

    def _seq(self, stmts: Sequence[ast.stmt], opens: _Opens) -> _Opens:
        for stmt in stmts:
            opens = self._stmt(stmt, opens)
        return opens

    def _stmt(self, stmt: ast.stmt, opens: _Opens) -> _Opens:
        if isinstance(stmt, ast.If):
            return self._if(stmt, opens)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, opens)
        if isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
            return self._try(stmt, opens)  # type: ignore[arg-type]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, opens)
        if stmt.__class__.__name__ == "Match":
            return self._match(stmt, opens)
        if isinstance(stmt, ast.Return):
            bid = self.cfg.add_block("stmt", stmt)
            self._connect(opens, bid)
            self._unwind_through_finallys(
                bid, list(reversed(self._frames)), self.cfg.exit, "return"
            )
            return []
        if isinstance(stmt, ast.Raise):
            bid = self.cfg.add_block("stmt", stmt)
            self._connect(opens, bid)
            self._raise_edge(bid, "raise")
            return []
        if isinstance(stmt, ast.Break):
            return self._break_or_continue(stmt, opens, is_break=True)
        if isinstance(stmt, ast.Continue):
            return self._break_or_continue(stmt, opens, is_break=False)
        bid = self.cfg.add_block("stmt", stmt)
        self._connect(opens, bid)
        if _may_raise(stmt):
            self._raise_edge(bid)
        return [(bid, "flow")]

    def _break_or_continue(
        self, stmt: ast.stmt, opens: _Opens, is_break: bool
    ) -> _Opens:
        bid = self.cfg.add_block("stmt", stmt)
        self._connect(opens, bid)
        escaped: List[_Frame] = []
        for frame in reversed(self._frames):
            if isinstance(frame, _LoopFrame):
                kind = "break" if is_break else "continue"
                if is_break:
                    # the loop's after-block does not exist yet; chain the
                    # finallys now and leave the last hop as an open end
                    fins = [
                        f for f in escaped if isinstance(f, _FinallyFrame)
                    ]
                    current = bid
                    for fin in fins:
                        self.cfg.add_edge(current, fin.entry, kind)
                        current = fin.exit
                    frame.breaks.append((current, kind))
                else:
                    self._unwind_through_finallys(
                        bid, escaped, frame.header, kind
                    )
                return []
            escaped.append(frame)
        # break/continue outside any loop: syntactically invalid; treat as
        # a plain fallthrough so a bad fixture never crashes the builder
        return [(bid, "flow")]

    # -- compound statements -----------------------------------------------

    def _if(self, stmt: ast.If, opens: _Opens) -> _Opens:
        test = self.cfg.add_block("test", stmt)
        self._connect(opens, test)
        self._raise_edge(test)
        body_opens = self._seq(stmt.body, [(test, "true")])
        if stmt.orelse:
            else_opens = self._seq(stmt.orelse, [(test, "false")])
        else:
            else_opens = [(test, "false")]
        return body_opens + else_opens

    def _loop(self, stmt: ast.stmt, opens: _Opens) -> _Opens:
        header = self.cfg.add_block("test", stmt)
        self._connect(opens, header)
        self._raise_edge(header)
        frame = _LoopFrame(header=header)
        self._frames.append(frame)
        body = stmt.body  # type: ignore[attr-defined]
        body_opens = self._seq(body, [(header, "true")])
        self._connect(body_opens, header)
        # re-kind the back edges for readability
        self._frames.pop()
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            exits = self._seq(orelse, [(header, "false")])
        else:
            exits = [(header, "false")]
        return exits + frame.breaks

    def _with(self, stmt: ast.stmt, opens: _Opens) -> _Opens:
        header = self.cfg.add_block("with", stmt)
        self._connect(opens, header)
        self._raise_edge(header)
        for item in stmt.items:  # type: ignore[attr-defined]
            if isinstance(item.optional_vars, ast.Name):
                self.cfg.managed_names.add(item.optional_vars.id)
        return self._seq(stmt.body, [(header, "flow")])  # type: ignore[attr-defined]

    def _match(self, stmt: ast.stmt, opens: _Opens) -> _Opens:
        header = self.cfg.add_block("test", stmt)
        self._connect(opens, header)
        self._raise_edge(header)
        out: _Opens = [(header, "false")]  # no case matched
        for case in stmt.cases:  # type: ignore[attr-defined]
            out.extend(self._seq(case.body, [(header, "true")]))
        return out

    def _try(self, stmt: ast.Try, opens: _Opens) -> _Opens:
        outer_exc = self._exception_target()

        fin: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            fin_entry = self.cfg.add_block("finally")
            # the finally body itself runs under the *outer* frames: an
            # exception raised inside it propagates past this try
            fin_opens = self._seq(stmt.finalbody, [(fin_entry, "flow")])
            fin_exit = self.cfg.add_block("finally-end")
            self._connect(fin_opens, fin_exit)
            # entered with an in-flight exception, the finally re-raises
            self.cfg.add_edge(fin_exit, outer_exc, "exception")
            fin = _FinallyFrame(entry=fin_entry, exit=fin_exit)

        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self.cfg.add_block("except")

        if fin is not None:
            self._frames.append(fin)
        if dispatch is not None:
            self._frames.append(_ExceptFrame(dispatch=dispatch))
        body_opens = self._seq(stmt.body, opens)
        if dispatch is not None:
            self._frames.pop()  # handlers/else don't re-enter the dispatch

        # else clause: runs only after a clean body, same finally routing
        else_opens = self._seq(stmt.orelse, body_opens)

        handler_opens: _Opens = []
        caught_all = False
        if dispatch is not None:
            for handler in stmt.handlers:
                caught_all = caught_all or _is_catch_all(handler)
                handler_opens.extend(
                    self._seq(handler.body, [(dispatch, "exception")])
                )
            if not caught_all:
                # unmatched exception: through finally, then onward
                self.cfg.add_edge(
                    dispatch,
                    fin.entry if fin is not None else outer_exc,
                    "exception",
                )

        if fin is not None:
            self._frames.pop()
            self._connect(else_opens + handler_opens, fin.entry)
            return [(fin.exit, "flow")]
        return else_opens + handler_opens


def build_cfg(func: ast.AST) -> CFG:
    """CFG for one ``FunctionDef``/``AsyncFunctionDef`` (or any stmt body)."""
    return _Builder(func).build()


__all__ = [
    "Block",
    "CFG",
    "Edge",
    "EXCEPTIONAL_KINDS",
    "build_cfg",
]
