"""Whole-program facts for skynet-lint's project rules (REP012-REP015).

Per-file rules see one AST at a time; the failure modes that actually
break deterministic sharded replay -- a layering leak, a wall-clock value
laundered through two helpers into an incident id, a module-level dict
mutated from a shard code path -- live *between* files.  This subpackage
computes the shared whole-program facts once per lint run:

* :class:`~.imports.ImportGraph` -- project-internal import edges with
  relative-import and ``__init__`` re-export resolution, closures, SCCs;
* :class:`~.symbols.SymbolIndex` -- per-module symbol tables (globals,
  classes and their attributes, functions, import bindings) plus
  project-wide call-target resolution;
* :class:`~.callgraph.CallGraph` -- function-level call edges (imports
  resolved exactly, method calls over-approximated by name) and
  entry-point reachability with witness chains;
* :class:`~.dataflow.DeterminismTaint` -- an intraprocedural dataflow
  pass extended along the call graph (returns and attribute assignments)
  tracking nondeterminism sources into identity/journal sinks;
* :class:`~.cfg.CFG` / :mod:`~.flow` -- per-function control-flow graphs
  (branches, loops, try/except/finally, ``with``, early return/raise,
  kinded exception edges) and a generic worklist solver with canned
  reaching-definitions / liveness / must-execute-on-all-paths analyses,
  the substrate for the flow-sensitive rules (REP017-REP019).

Everything is built lazily through :class:`ProjectAnalysis` (reachable as
``Project.analysis`` in the engine) so file-scoped runs pay nothing.
"""

from __future__ import annotations

from .analysis import ProjectAnalysis
from .callgraph import CallGraph
from .cfg import CFG, Block, Edge, build_cfg
from .dataflow import DeterminismTaint, Flow, TaintSource
from .flow import (
    Solution,
    blocks_on_all_paths,
    live_variables,
    reaches,
    reaching_definitions,
    solve,
)
from .imports import ImportGraph, ImportRecord
from .symbols import ClassInfo, FunctionInfo, ModuleSymbols, SymbolIndex

__all__ = [
    "Block",
    "CFG",
    "CallGraph",
    "ClassInfo",
    "DeterminismTaint",
    "Edge",
    "Flow",
    "FunctionInfo",
    "ImportGraph",
    "ImportRecord",
    "ModuleSymbols",
    "ProjectAnalysis",
    "Solution",
    "SymbolIndex",
    "TaintSource",
    "blocks_on_all_paths",
    "build_cfg",
    "live_variables",
    "reaches",
    "reaching_definitions",
    "solve",
]
