"""Cross-function determinism taint (the REP013 engine).

Tracks values produced by nondeterministic APIs -- wall clocks, the
global RNG, ``os.environ``, unseeded ``random.Random()``, set-iteration
order -- through assignments, returns, and attribute writes, into the
sinks that must stay run-stable: incident identity fields, Incident
construction, journal writes, and checkpoint payloads (a nondeterministic
value serialised into a checkpoint resurfaces on resume and breaks the
replay-identity guarantee one run later).

The pass is intraprocedural per function, extended along the call graph
by a fixpoint over two summaries:

* *return taint* -- functions whose return value carries a source;
* *attribute taint* -- attribute names assigned a tainted value
  anywhere (``self.created_at = stamp()`` taints ``.created_at`` reads
  in every other method).

``sorted()``/``min()``/``max()`` launder set-iteration-order taint only
(a sorted list of wall-clock values is still wall-clock-derived).
Unknown calls propagate their arguments' taint conservatively: for this
rule a missed flow is worse than a reviewable false positive.  Findings
anchor at the *source* site so one nondeterministic call reports once no
matter how many sinks it reaches.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from ..determinism import classify_source_call
from .symbols import FunctionInfo, SymbolIndex, annotation_is_set

#: Attribute / keyword names that feed incident identity or timestamps.
SINK_ATTRS = frozenset(
    {
        "incident_id",
        "created_at",
        "first_seen",
        "last_seen",
        "update_time",
        "timestamp",
        "closed_at",
    }
)

#: Call-name leaves that write durable records.
SINK_CALL_LEAVES = frozenset({"append_record", "write_record"})

#: Call-name leaves that build durable checkpoint payloads.
CHECKPOINT_CALL_LEAVES = frozenset({"pipeline_state_dict", "state_dict"})

#: Builtins that impose a total order, discharging set-order taint.
ORDER_LAUNDERERS = frozenset({"sorted", "min", "max"})


@dataclasses.dataclass(frozen=True)
class TaintSource:
    """Where nondeterminism enters: one call or iteration site."""

    kind: str  # "wall-clock" | "global-rng" | "environ" | "unseeded-rng" | "set-order"
    detail: str  # e.g. "time.time" or "iteration over set"
    path: str
    line: int
    col: int
    function: str  # function key the source sits in


@dataclasses.dataclass(frozen=True)
class Flow:
    """One source-to-sink determinism leak."""

    source: TaintSource
    sink: str  # human description, e.g. "attribute .created_at"
    sink_path: str
    sink_line: int
    via: Tuple[str, ...]  # propagation steps between source and sink


@dataclasses.dataclass(frozen=True)
class _Taint:
    source: TaintSource
    via: Tuple[str, ...] = ()

    def step(self, note: str) -> "_Taint":
        if note in self.via:
            return self
        return _Taint(self.source, self.via + (note,))


class DeterminismTaint:
    """Fixpoint taint analysis over every function in the project."""

    def __init__(
        self,
        symbols: SymbolIndex,
        exclude_modules: Sequence[str] = (),
    ):
        self._symbols = symbols
        self._exclude = set(exclude_modules)
        self._returns: Dict[str, _Taint] = {}
        self._attrs: Dict[str, _Taint] = {}
        self._flows: Dict[Tuple[str, int, str, int, str], Flow] = {}
        self.flows: List[Flow] = []
        self._run()

    def _run(self) -> None:
        functions = [
            info
            for key, info in sorted(self._symbols.functions.items())
            if info.module not in self._exclude
        ]
        for _ in range(10):
            before = (len(self._returns), len(self._attrs))
            self._flows.clear()
            for info in functions:
                _FunctionPass(self, info).run()
            if (len(self._returns), len(self._attrs)) == before:
                break
        self.flows = sorted(
            self._flows.values(),
            key=lambda f: (f.source.path, f.source.line, f.sink_path, f.sink_line),
        )

    # -- summary plumbing used by _FunctionPass ----------------------------

    def _record_return(self, key: str, taint: _Taint) -> None:
        self._returns.setdefault(key, taint.step(f"returned from {key}"))

    def _record_attr(self, name: str, taint: _Taint) -> None:
        self._attrs.setdefault(name, taint.step(f"stored in attribute .{name}"))

    def _record_flow(
        self, taint: _Taint, sink: str, path: str, line: int
    ) -> None:
        flow = Flow(
            source=taint.source,
            sink=sink,
            sink_path=path,
            sink_line=line,
            via=taint.via,
        )
        key = (taint.source.path, taint.source.line, path, line, sink)
        self._flows.setdefault(key, flow)


class _FunctionPass:
    """One intraprocedural walk; two sweeps to stabilise loop-carried taint."""

    def __init__(self, owner: DeterminismTaint, info: FunctionInfo):
        self._owner = owner
        self._symbols = owner._symbols
        self._info = info
        self._env: Dict[str, _Taint] = {}

    def run(self) -> None:
        for _ in range(2):
            for stmt in self._info.node.body:
                self._stmt(stmt)

    # -- statements --------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value)
            if taint is None and isinstance(stmt.target, ast.Name):
                taint = self._env.get(stmt.target.id)
            self._assign(stmt.target, taint, augmented=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._expr(stmt.value)
                if taint is not None:
                    self._owner._record_return(self._info.key, taint)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._iteration_taint(stmt.iter)
            self._assign(stmt.target, taint)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
            for inner in stmt.body:
                self._stmt(inner)
        elif isinstance(stmt, ast.Try):
            for inner in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._stmt(inner)
        # nested defs / classes get their own pass via SymbolIndex when
        # they are methods; closures are out of scope for this rule

    def _assign(
        self,
        target: ast.expr,
        taint: Optional[_Taint],
        augmented: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self._env[target.id] = taint
            elif not augmented:
                self._env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint, augmented)
        elif isinstance(target, ast.Attribute):
            if taint is not None:
                if target.attr in SINK_ATTRS:
                    self._owner._record_flow(
                        taint,
                        f"attribute .{target.attr}",
                        self._info.source.rel,
                        target.lineno,
                    )
                self._owner._record_attr(target.attr, taint)
        elif isinstance(target, ast.Subscript):
            self._expr(target.value)

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.expr) -> Optional[_Taint]:
        if isinstance(expr, ast.Name):
            return self._env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            hit = self._owner._attrs.get(expr.attr)
            if hit is not None:
                return hit
            return self._expr(expr.value)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.BinOp):
            return self._first(expr.left, expr.right)
        if isinstance(expr, ast.BoolOp):
            return self._first(*expr.values)
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.IfExp):
            return self._first(expr.body, expr.orelse)
        if isinstance(expr, ast.JoinedStr):
            parts = [
                value.value
                for value in expr.values
                if isinstance(value, ast.FormattedValue)
            ]
            return self._first(*parts)
        if isinstance(expr, ast.FormattedValue):
            return self._expr(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return self._first(*expr.elts)
        if isinstance(expr, ast.Dict):
            return self._first(*[v for v in expr.values if v is not None])
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            taints = [self._iteration_taint(gen.iter) for gen in expr.generators]
            taints.append(self._expr(expr.elt))
            return next((t for t in taints if t is not None), None)
        return None

    def _first(self, *exprs: ast.expr) -> Optional[_Taint]:
        for expr in exprs:
            taint = self._expr(expr)
            if taint is not None:
                return taint
        return None

    def _iteration_taint(self, iterable: ast.expr) -> Optional[_Taint]:
        """Taint carried by loop variables, including set-order."""
        if self._is_set_valued(iterable):
            return _Taint(
                TaintSource(
                    kind="set-order",
                    detail="iteration over a set (order is salt-dependent)",
                    path=self._info.source.rel,
                    line=iterable.lineno,
                    col=iterable.col_offset + 1,
                    function=self._info.key,
                )
            )
        return self._expr(iterable)

    def _is_set_valued(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted in ("set", "frozenset"):
                return True
            kind, payload = self._symbols.resolve_call(
                self._info.module, expr.func
            )
            if kind in ("project", "methods") and isinstance(payload, list):
                return any(target.returns_set for target in payload)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_valued(expr.left) or self._is_set_valued(
                expr.right
            )
        if isinstance(expr, ast.Name):
            taint = self._env.get(expr.id)
            return taint is not None and taint.source.kind == "set-order-value"
        return False

    def _call(self, call: ast.Call) -> Optional[_Taint]:
        dotted = dotted_name(call.func)
        kind, payload = self._symbols.resolve_call(self._info.module, call.func)

        arg_taint = self._first(
            *list(call.args),
            *[kw.value for kw in call.keywords if kw.value is not None],
        )

        # sink checks happen before laundering: passing a tainted value
        # into a journal write is a leak even if later sorted
        self._check_call_sinks(call, kind, payload, arg_taint)

        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        if leaf in ORDER_LAUNDERERS and dotted == leaf:
            if arg_taint is not None and arg_taint.source.kind == "set-order":
                return None
            return arg_taint

        external_name: Optional[str] = None
        if kind == "external" and isinstance(payload, str):
            external_name = payload
        elif kind == "unknown" and dotted is not None:
            external_name = dotted
        if external_name is not None:
            source_kind = classify_source_call(external_name)
            if source_kind:
                return _Taint(self._source(source_kind, external_name, call))
        if dotted in ("random.Random", "Random") and not (
            call.args or call.keywords
        ):
            return _Taint(
                self._source("unseeded-rng", "random.Random()", call)
            )

        if kind in ("project", "methods") and isinstance(payload, list):
            for target in payload:
                summary = self._owner._returns.get(target.key)
                if summary is not None:
                    return summary
            if kind == "project":
                # fully resolved and summary says clean: trust it, but a
                # tainted argument can still come back out
                return (
                    arg_taint.step(f"through call to {payload[0].key}")
                    if arg_taint is not None and payload
                    else None
                )

        # unknown / external call: taint passes through arguments
        if arg_taint is not None and dotted is not None:
            return arg_taint.step(f"through call to {dotted}()")
        return arg_taint

    def _check_call_sinks(
        self,
        call: ast.Call,
        kind: str,
        payload: object,
        arg_taint: Optional[_Taint],
    ) -> None:
        dotted = dotted_name(call.func) or ""
        leaf = dotted.rsplit(".", 1)[-1]

        # tainted keyword feeding an identity field of any call
        for kw in call.keywords:
            if kw.arg in SINK_ATTRS and kw.value is not None:
                taint = self._expr(kw.value)
                if taint is not None:
                    self._owner._record_flow(
                        taint,
                        f"keyword {kw.arg}= of {dotted or 'call'}()",
                        self._info.source.rel,
                        call.lineno,
                    )

        if arg_taint is None:
            return
        journal_like = "journal" in dotted.lower() or leaf in SINK_CALL_LEAVES
        checkpoint_like = (
            "checkpoint" in dotted.lower() or leaf in CHECKPOINT_CALL_LEAVES
        )
        incident_ctor = leaf.endswith("Incident") and leaf[:1].isupper()
        if not incident_ctor and kind == "project" and isinstance(payload, list):
            incident_ctor = any(
                (target.owner or "").endswith("Incident") for target in payload
            )
        if journal_like:
            self._owner._record_flow(
                arg_taint,
                f"journal write {dotted or leaf}()",
                self._info.source.rel,
                call.lineno,
            )
        elif incident_ctor:
            self._owner._record_flow(
                arg_taint,
                f"Incident construction {dotted or leaf}()",
                self._info.source.rel,
                call.lineno,
            )
        elif checkpoint_like:
            self._owner._record_flow(
                arg_taint,
                f"checkpoint write {dotted or leaf}()",
                self._info.source.rel,
                call.lineno,
            )

    def _source(self, kind: str, detail: str, node: ast.expr) -> TaintSource:
        return TaintSource(
            kind=kind,
            detail=detail,
            path=self._info.source.rel,
            line=node.lineno,
            col=node.col_offset + 1,
            function=self._info.key,
        )


__all__ = [
    "DeterminismTaint",
    "Flow",
    "TaintSource",
    "SINK_ATTRS",
    "annotation_is_set",
]
