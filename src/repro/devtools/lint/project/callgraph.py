"""Function-level call graph over the linted project.

Nodes are function keys (``module:qualname``).  Edges come from two
resolution tiers: calls whose callee resolves through the import-binding
tables land on the exact target (including constructor calls, which edge
to ``__init__``); calls on unresolvable receivers (``self.x.flush()``)
are over-approximated by method name across every project class.  That
over-approximation is deliberate -- for REP013/REP014 a missed edge is a
missed race, a spurious edge is at worst a reviewable finding.

:meth:`CallGraph.reachable` answers "which functions can an entry point
reach", returning a witness chain per reached function so findings can
say *how* a shard path gets to a mutation site.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from .symbols import FunctionInfo, SymbolIndex


@dataclasses.dataclass(frozen=True)
class CallEdge:
    """One call site: ``caller`` invokes ``callee`` at ``path:line``."""

    caller: str  # function key, or "module-body:<module>" for top level
    callee: str  # function key
    path: str
    line: int
    exact: bool  # resolved through imports (True) or by method name


class CallGraph:
    """Call edges plus entry-point reachability with witness chains."""

    def __init__(self, symbols: SymbolIndex):
        self._symbols = symbols
        self.edges: List[CallEdge] = []
        self._out: Dict[str, List[CallEdge]] = {}
        #: function key -> external dotted calls made inside it
        self.external_calls: Dict[str, List[Tuple[str, int]]] = {}
        for key, info in sorted(symbols.functions.items()):
            self._scan_function(key, info)
        for module, table in sorted(symbols.modules.items()):
            if table.source.tree is not None:
                self._scan_body(module, table.source.tree)

    # -- construction ------------------------------------------------------

    def _scan_function(self, key: str, info: FunctionInfo) -> None:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                self._record(key, info.module, node)

    def _scan_body(self, module: str, tree: ast.Module) -> None:
        """Module-level statements call things too (decorators, singletons)."""
        key = f"module-body:{module}"
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._record(key, module, node)

    def _record(self, caller: str, module: str, call: ast.Call) -> None:
        kind, payload = self._symbols.resolve_call(module, call.func)
        table = self._symbols.modules.get(module)
        path = table.source.rel if table is not None else "<unknown>"
        if kind == "project":
            assert isinstance(payload, list)
            for target in payload:
                self._add(CallEdge(caller, target.key, path, call.lineno, True))
        elif kind == "methods":
            assert isinstance(payload, list)
            for target in payload:
                if target.name.startswith("__") and target.name != "__call__":
                    continue  # dunders rarely ring through attribute calls
                self._add(
                    CallEdge(caller, target.key, path, call.lineno, False)
                )
        elif kind == "external":
            assert isinstance(payload, str)
            self.external_calls.setdefault(caller, []).append(
                (payload, call.lineno)
            )
        else:
            dotted = dotted_name(call.func)
            if dotted is not None:
                self.external_calls.setdefault(caller, []).append(
                    (dotted, call.lineno)
                )

    def _add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)

    # -- queries -----------------------------------------------------------

    def callees_of(self, key: str) -> List[CallEdge]:
        return list(self._out.get(key, []))

    def match_functions(self, patterns: Sequence[str]) -> List[str]:
        """Function keys matching any ``module-glob:qualname-glob`` pattern."""
        out: Set[str] = set()
        for pattern in patterns:
            if ":" in pattern:
                mod_pat, qual_pat = pattern.split(":", 1)
            else:
                mod_pat, qual_pat = "*", pattern
            for key in self._symbols.functions:
                module, qualname = key.split(":", 1)
                if fnmatch.fnmatchcase(module, mod_pat) and fnmatch.fnmatchcase(
                    qualname, qual_pat
                ):
                    out.add(key)
        return sorted(out)

    def reachable(
        self, entry_patterns: Sequence[str]
    ) -> Dict[str, List[str]]:
        """BFS from entry points: reached key -> witness chain of keys.

        The chain starts at the entry point and ends at the reached
        function; entry points map to a one-element chain.
        """
        entries = self.match_functions(entry_patterns)
        chains: Dict[str, List[str]] = {}
        queue: List[str] = []
        for entry in entries:
            if entry not in chains:
                chains[entry] = [entry]
                queue.append(entry)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for edge in self._out.get(current, []):
                if edge.callee not in chains:
                    chains[edge.callee] = chains[current] + [edge.callee]
                    queue.append(edge.callee)
        return chains

    def function(self, key: str) -> Optional[FunctionInfo]:
        return self._symbols.functions.get(key)

    @staticmethod
    def describe_chain(chain: Iterable[str]) -> str:
        """``a.b:f -> c.d:g`` witness text, module prefixes trimmed."""
        shown = []
        for key in chain:
            module, qualname = key.split(":", 1)
            shown.append(f"{module.rsplit('.', 1)[-1]}:{qualname}")
        return " -> ".join(shown)
