"""Generic dataflow over :mod:`.cfg` graphs, plus the canned analyses.

One worklist solver covers the whole family: forward or backward, may
(union meet) or must (intersection meet), gen/kill or arbitrary
transfer.  The rules use three instantiations:

* **reaching definitions** -- which assignments of each name can reach a
  block (forward, may);
* **liveness** -- which names are still read on some path after a block
  (backward, may);
* **must-execute** -- which blocks lie on *every* entry-to-exit path
  (forward, must): the "is this key written on all paths / is this close
  guaranteed" fact that checkpoint symmetry and resource safety hinge
  on.

All facts are hashable values in ``frozenset`` lattices; the solver
terminates because transfer functions are monotone over finite sets
(gen/kill by construction; the must-execute transfer only ever adds the
block's own id).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .cfg import CFG, EXCEPTIONAL_KINDS, Block

Fact = Any
FactSet = FrozenSet[Fact]


@dataclasses.dataclass
class Solution:
    """Per-block in/out fact sets of one converged analysis."""

    inputs: Dict[int, FactSet]
    outputs: Dict[int, FactSet]


def solve(
    cfg: CFG,
    *,
    direction: str = "forward",
    may: bool = True,
    gen: Callable[[Block], Iterable[Fact]],
    kill: Callable[[Block], Iterable[Fact]],
    init: Iterable[Fact] = (),
    universe: Iterable[Fact] = (),
    include_exceptional: bool = True,
) -> Solution:
    """Worklist fixpoint of a gen/kill problem over ``cfg``.

    ``may=True`` joins with union (uninitialised neighbours contribute
    nothing); ``may=False`` joins with intersection, where blocks not
    yet visited contribute ``universe`` (the standard optimistic
    initialisation, required for must-facts to survive loops).
    ``init`` seeds the boundary block (entry when forward, exit when
    backward).  ``include_exceptional=False`` drops exception/raise
    edges from the graph first.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"bad direction {direction!r}")
    forward = direction == "forward"
    boundary = cfg.entry if forward else cfg.exit
    init_set = frozenset(init)
    universe_set = frozenset(universe)
    gen_cache: Dict[int, FactSet] = {}
    kill_cache: Dict[int, FactSet] = {}
    for bid, block in cfg.blocks.items():
        gen_cache[bid] = frozenset(gen(block))
        kill_cache[bid] = frozenset(kill(block))

    def neighbours_in(bid: int) -> List[int]:
        edges = (
            cfg.preds(bid, include_exceptional)
            if forward
            else cfg.succs(bid, include_exceptional)
        )
        return [e.src if forward else e.dst for e in edges]

    def neighbours_out(bid: int) -> List[int]:
        edges = (
            cfg.succs(bid, include_exceptional)
            if forward
            else cfg.preds(bid, include_exceptional)
        )
        return [e.dst if forward else e.src for e in edges]

    inputs: Dict[int, FactSet] = {}
    outputs: Dict[int, FactSet] = {
        bid: (universe_set if not may else frozenset())
        for bid in cfg.blocks
    }
    outputs[boundary] = frozenset(
        (init_set | gen_cache[boundary]) - kill_cache[boundary]
    )

    work: List[int] = sorted(cfg.blocks)
    in_work: Set[int] = set(work)
    while work:
        bid = work.pop(0)
        in_work.discard(bid)
        if bid == boundary:
            incoming = init_set
        else:
            sources = neighbours_in(bid)
            if not sources:
                incoming = universe_set if not may else frozenset()
            elif may:
                incoming = frozenset().union(
                    *(outputs[s] for s in sources)
                )
            else:
                incoming = frozenset.intersection(
                    *(outputs[s] for s in sources)
                )
        inputs[bid] = incoming
        new_out = frozenset((incoming | gen_cache[bid]) - kill_cache[bid])
        if new_out != outputs[bid]:
            outputs[bid] = new_out
            for succ in neighbours_out(bid):
                if succ not in in_work:
                    in_work.add(succ)
                    work.append(succ)
    # blocks never pulled from the worklist twice still need inputs
    for bid in cfg.blocks:
        inputs.setdefault(
            bid, universe_set if not may else frozenset()
        )
    return Solution(inputs=inputs, outputs=outputs)


# -- canned analyses -------------------------------------------------------


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def defs_of(stmt: ast.stmt) -> Set[str]:
    """Names (re)bound by one statement, header bindings included."""
    names: Set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(_target_names(target))
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.add((alias.asname or alias.name).split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.add(stmt.name)
    return names


def uses_of(stmt: ast.stmt) -> Set[str]:
    """Names loaded by one statement (header expressions only for
    compounds -- their bodies are separate blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        roots = list(stmt.decorator_list)
    else:
        roots = [stmt]
    names: Set[str] = set()
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return names


#: a definition fact: (variable name, defining block id)
Definition = Tuple[str, int]


def reaching_definitions(
    cfg: CFG, include_exceptional: bool = True
) -> Solution:
    """Forward-may: which ``(name, block)`` definitions reach each block.

    Function parameters count as definitions at the entry block.
    """
    params: Set[str] = set()
    args = getattr(cfg.func, "args", None)
    if args is not None:
        for arg in (
            list(getattr(args, "posonlyargs", []))
            + args.args
            + args.kwonlyargs
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        ):
            params.add(arg.arg)
    all_defs: Dict[str, Set[Definition]] = {}
    block_defs: Dict[int, Set[str]] = {}
    for bid, block in cfg.blocks.items():
        if bid == cfg.entry:
            names = set(params)
        else:
            names = defs_of(block.stmt) if block.stmt is not None else set()
        block_defs[bid] = names
        for name in names:
            all_defs.setdefault(name, set()).add((name, bid))

    def gen(block: Block) -> Iterable[Definition]:
        return {(name, block.id) for name in block_defs[block.id]}

    def kill(block: Block) -> Iterable[Definition]:
        out: Set[Definition] = set()
        for name in block_defs[block.id]:
            out.update(d for d in all_defs[name] if d[1] != block.id)
        return out

    return solve(
        cfg,
        direction="forward",
        may=True,
        gen=gen,
        kill=kill,
        include_exceptional=include_exceptional,
    )


def live_variables(cfg: CFG, include_exceptional: bool = True) -> Solution:
    """Backward-may liveness: names read on some path after each block."""

    def gen(block: Block) -> Iterable[str]:
        return uses_of(block.stmt) if block.stmt is not None else ()

    def kill(block: Block) -> Iterable[str]:
        return defs_of(block.stmt) if block.stmt is not None else ()

    return solve(
        cfg,
        direction="backward",
        may=True,
        gen=gen,
        kill=kill,
        include_exceptional=include_exceptional,
    )


def blocks_on_all_paths(
    cfg: CFG, include_exceptional: bool = False
) -> FrozenSet[int]:
    """Block ids that execute on *every* entry-to-exit path.

    The must-execute fact behind "is this checkpoint key written
    unconditionally" and "is this close guaranteed".  By default the
    exceptional edges are excluded -- "all paths" means all normally
    terminating paths; pass ``include_exceptional=True`` to also demand
    execution when an exception unwinds (then only ``finally`` bodies
    qualify).  If the exit is unreachable under the chosen view the
    answer degenerates to every block, which downstream rules treat as
    "no gating observed".
    """
    solution = solve(
        cfg,
        direction="forward",
        may=False,
        gen=lambda block: {block.id},
        kill=lambda block: (),
        universe=set(cfg.blocks),
        include_exceptional=include_exceptional,
    )
    return solution.outputs[cfg.exit]


def reaches(
    cfg: CFG,
    start: int,
    target: int,
    avoid: Iterable[int] = (),
    include_exceptional: bool = True,
    no_raise: Iterable[int] = (),
) -> bool:
    """True when some path runs ``start`` to ``target`` without entering
    any ``avoid`` block (the start itself is never "avoided").

    Blocks in ``no_raise`` are assumed not to raise: their outgoing
    exception edges are not followed (e.g. a resource rule treating
    ``close()`` calls as infallible so one close "raising" does not count
    as a leak path past the next).
    """
    blocked = set(avoid)
    trusted = set(no_raise)
    if target == start:
        return True
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for edge in cfg.succs(current, include_exceptional):
            if current in trusted and edge.kind in EXCEPTIONAL_KINDS:
                continue
            nxt = edge.dst
            if nxt == target:
                return True
            if nxt in seen or nxt in blocked:
                continue
            seen.add(nxt)
            stack.append(nxt)
    return False


__all__ = [
    "Definition",
    "Solution",
    "blocks_on_all_paths",
    "defs_of",
    "live_variables",
    "reaches",
    "reaching_definitions",
    "solve",
    "uses_of",
]
