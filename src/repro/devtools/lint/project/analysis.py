"""Lazy facade bundling the whole-program facts for one lint run.

Project rules share one :class:`ProjectAnalysis` (via ``Project.analysis``
in the engine) so the import graph, symbol index, call graph, and taint
pass are each computed at most once per run regardless of how many rules
consume them -- and not at all when only file-scoped rules run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..engine import Project
from .callgraph import CallGraph
from .cfg import CFG, build_cfg
from .dataflow import DeterminismTaint
from .imports import ImportGraph
from .symbols import FunctionInfo, SymbolIndex


class ProjectAnalysis:
    """Memoised accessors over one ``Project``'s files."""

    def __init__(self, project: Project):
        self._project = project
        self._imports: Optional[ImportGraph] = None
        self._symbols: Optional[SymbolIndex] = None
        self._callgraph: Optional[CallGraph] = None
        self._taints: Dict[Tuple[str, ...], DeterminismTaint] = {}
        self._cfgs: Dict[str, CFG] = {}

    @property
    def imports(self) -> ImportGraph:
        if self._imports is None:
            self._imports = ImportGraph(self._project)
        return self._imports

    @property
    def symbols(self) -> SymbolIndex:
        if self._symbols is None:
            self._symbols = SymbolIndex(self._project, self.imports)
        return self._symbols

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.symbols)
        return self._callgraph

    def taint(self, exclude_modules: Sequence[str] = ()) -> DeterminismTaint:
        key = tuple(sorted(exclude_modules))
        if key not in self._taints:
            self._taints[key] = DeterminismTaint(
                self.symbols, exclude_modules=key
            )
        return self._taints[key]

    def cfg(self, info: FunctionInfo) -> CFG:
        """Control-flow graph of one indexed function, built at most once
        per run (flow-sensitive rules revisit the same accessors)."""
        key = info.key
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(info.node)
        return self._cfgs[key]
