"""Per-module symbol tables and project-wide name resolution.

For each module: the module-level bindings (with mutability of the bound
value -- the REP014 seed set), class definitions with their class-body
attributes and methods, top-level functions, and the import-binding map
(``np`` -> ``numpy``, ``stamp`` -> ``pkg.helpers.stamp``) that lets call
sites be resolved to either a *project function* or a fully-qualified
*external* dotted name (so ``from time import time as now; now()`` still
matches the wall-clock inventory).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..astutil import dotted_name
from ..engine import Project, SourceFile
from .imports import ImportGraph, pseudo_module

#: Callables that build mutable containers (REP014's global-state seeds).
MUTABLE_BUILDERS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "count",  # itertools.count: a stateful iterator, same hazard
        "cycle",
        "chain",
    }
)

#: Return-annotation heads whose iteration order is interpreter-defined.
SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
     "KeysView", "ItemsView"}
)


def is_mutable_value(node: ast.AST) -> Tuple[bool, str]:
    """(mutable?, description) for a module/class-level bound value."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return True, "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True, "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True, "set"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            leaf = name.rsplit(".", 1)[-1]
            if leaf in MUTABLE_BUILDERS:
                return True, leaf
    return False, ""


def annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    """True when a return annotation denotes an unordered set type."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    if name is None and isinstance(node, ast.Constant) and isinstance(
        node.value, str
    ):
        name = node.value.split("[", 1)[0].strip()
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in SET_ANNOTATIONS


@dataclasses.dataclass
class GlobalInfo:
    """One module-level binding."""

    name: str
    line: int
    col: int
    mutable: bool
    kind: str  # "list" / "dict" / "count" / "" ...


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str  # "func" or "Class.method"
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    owner: Optional[str]  # class name for methods
    source: SourceFile

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def returns_set(self) -> bool:
        return annotation_is_set(self.node.returns)


@dataclasses.dataclass
class ClassInfo:
    """One class definition with its class-body state."""

    module: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    #: class-body attribute name -> (line, col, mutable?, kind)
    attrs: Dict[str, Tuple[int, int, bool, str]]
    methods: Dict[str, FunctionInfo]
    bases: List[str]


@dataclasses.dataclass
class ModuleSymbols:
    """Everything one module defines or binds at its top level."""

    module: str
    source: SourceFile
    globals: Dict[str, GlobalInfo]
    classes: Dict[str, ClassInfo]
    functions: Dict[str, FunctionInfo]
    #: local binding -> dotted target; project targets use module names,
    #: external ones keep their written dotted path
    bindings: Dict[str, str]


class SymbolIndex:
    """Symbol tables for every module plus cross-module call resolution."""

    def __init__(self, project: Project, imports: ImportGraph):
        self._imports = imports
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        for source in project.files:
            if source.tree is None:
                continue
            module = pseudo_module(source)
            if module in self.modules:
                continue
            table = self._build_module(module, source)
            self.modules[module] = table
            for info in table.functions.values():
                self.functions[info.key] = info
            for cls in table.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for info in cls.methods.values():
                    self.functions[info.key] = info
                    self.methods_by_name.setdefault(info.name, []).append(info)

    # -- construction ------------------------------------------------------

    def _build_module(self, module: str, source: SourceFile) -> ModuleSymbols:
        assert source.tree is not None
        globals_: Dict[str, GlobalInfo] = {}
        classes: Dict[str, ClassInfo] = {}
        functions: Dict[str, FunctionInfo] = {}
        bindings: Dict[str, str] = {}

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    local = alias.asname or parts[0]
                    target = alias.name if alias.asname else parts[0]
                    bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                resolved = self._resolve_from(module, source, node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    if resolved is not None:
                        sub = f"{resolved}.{alias.name}"
                        if sub in self._imports.modules:
                            bindings[local] = sub
                        else:
                            bindings[local] = f"{resolved}:{alias.name}"
                    elif node.level == 0 and node.module:
                        bindings[local] = f"{node.module}.{alias.name}"

        for node in source.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                mutable, kind = (
                    is_mutable_value(value) if value is not None else (False, "")
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        globals_[target.id] = GlobalInfo(
                            name=target.id,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            mutable=mutable,
                            kind=kind,
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = FunctionInfo(
                    module=module, qualname=node.name, node=node,
                    owner=None, source=source,
                )
            elif isinstance(node, ast.ClassDef):
                classes[node.name] = self._build_class(module, source, node)
        return ModuleSymbols(
            module=module, source=source, globals=globals_,
            classes=classes, functions=functions, bindings=bindings,
        )

    def _build_class(
        self, module: str, source: SourceFile, node: ast.ClassDef
    ) -> ClassInfo:
        attrs: Dict[str, Tuple[int, int, bool, str]] = {}
        methods: Dict[str, FunctionInfo] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                mutable, kind = (
                    is_mutable_value(value) if value is not None else (False, "")
                )
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        attrs[target.id] = (
                            stmt.lineno, stmt.col_offset + 1, mutable, kind
                        )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = FunctionInfo(
                    module=module,
                    qualname=f"{node.name}.{stmt.name}",
                    node=stmt,
                    owner=node.name,
                    source=source,
                )
        bases = []
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                bases.append(name)
        return ClassInfo(
            module=module, name=node.name, node=node, source=source,
            attrs=attrs, methods=methods, bases=bases,
        )

    def _resolve_from(
        self, module: str, source: SourceFile, node: ast.ImportFrom
    ) -> Optional[str]:
        """Project module an ImportFrom is anchored at, or None."""
        if node.level == 0:
            dotted = node.module or ""
            return dotted if dotted in self._imports.modules else None
        parts = module.split(".")
        package = parts if source.path.name == "__init__.py" else parts[:-1]
        ups = node.level - 1
        if ups > len(package):
            return None
        base = package[: len(package) - ups] if ups else list(package)
        if node.module:
            base = base + node.module.split(".")
        dotted = ".".join(base)
        return dotted if dotted in self._imports.modules else None

    # -- resolution --------------------------------------------------------

    def resolve_call(
        self, module: str, callee: ast.AST
    ) -> Tuple[str, Union[str, List[FunctionInfo], None]]:
        """Resolve a call's callee expression from inside ``module``.

        Returns one of:

        * ``("project", [FunctionInfo, ...])`` -- project function(s) /
          constructor method(s) the call can reach;
        * ``("external", "time.time")`` -- fully-expanded external name;
        * ``("methods", [FunctionInfo, ...])`` -- unresolvable receiver,
          matched by method name over every project class (over-approx);
        * ``("unknown", None)``.
        """
        table = self.modules.get(module)
        dotted = dotted_name(callee)
        if table is None or dotted is None:
            return ("unknown", None)
        parts = dotted.split(".")
        head = parts[0]

        if head in table.bindings:
            target = table.bindings[head]
            if ":" in target:  # `from mod import symbol`
                target_module, symbol = target.split(":", 1)
                full = [symbol] + parts[1:]
                resolved = self._lookup(target_module, full)
                if resolved is not None:
                    return resolved
                return ("external", ".".join([target_module] + full))
            expanded = target.split(".") + parts[1:]
            # longest project-module prefix, then symbol path inside it
            for end in range(len(expanded), 0, -1):
                candidate = ".".join(expanded[:end])
                if candidate in self._imports.modules:
                    resolved = self._lookup(candidate, expanded[end:])
                    if resolved is not None:
                        return resolved
                    break
            else:
                return ("external", ".".join(expanded))
            return ("external", ".".join(expanded))

        if len(parts) == 1:
            local = self._lookup(module, parts)
            if local is not None:
                return local
            return ("unknown", None)

        # receiver is a local variable / attribute chain: method-name match
        hits = self.methods_by_name.get(parts[-1], [])
        if hits:
            return ("methods", list(hits))
        return ("unknown", None)

    def _lookup(
        self, module: str, symbol_path: Sequence[str]
    ) -> Optional[Tuple[str, List[FunctionInfo]]]:
        """``("project", funcs)`` for ``module`` . ``symbol_path``, or None."""
        table = self.modules.get(module)
        if table is None or not symbol_path:
            return None
        head = symbol_path[0]
        if head in table.functions and len(symbol_path) == 1:
            return ("project", [table.functions[head]])
        if head in table.classes:
            cls = table.classes[head]
            if len(symbol_path) == 1:  # constructor call
                ctors = [
                    cls.methods[name]
                    for name in ("__init__", "__post_init__", "__new__")
                    if name in cls.methods
                ]
                return ("project", ctors)
            if len(symbol_path) == 2 and symbol_path[1] in cls.methods:
                return ("project", [cls.methods[symbol_path[1]]])
        if head in table.bindings:  # re-exported through this module
            target = table.bindings[head]
            if ":" in target:
                target_module, symbol = target.split(":", 1)
                return self._lookup(
                    target_module, [symbol] + list(symbol_path[1:])
                )
            if target in self._imports.modules:
                return self._lookup(target, symbol_path[1:])
        return None

    def class_of_method(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.owner is None:
            return None
        table = self.modules.get(info.module)
        if table is None:
            return None
        return table.classes.get(info.owner)

    def set_returning_functions(self) -> Set[str]:
        """Keys of functions whose return annotation is set-typed."""
        return {key for key, fn in self.functions.items() if fn.returns_set}
