"""The project import graph: who imports whom, resolved to real modules.

Nodes are the dotted module names of the linted files (standalone files
outside any package get a pseudo-name so single-file runs still work).
Edges are *project-internal* imports only -- stdlib and third-party
imports are recorded per module but grow no edges.  Resolution handles
the three shapes that defeat naive grepping:

* **relative imports** -- ``from ..core import config`` resolved against
  the importer's package, including ``__init__`` importers whose package
  is the module itself;
* **``from pkg import name``** where ``name`` is a submodule, not a
  symbol -- the edge goes to ``pkg.name``;
* **``__init__`` re-exports** -- ``from repro.core import AlertTree``
  where ``AlertTree`` is re-exported by ``repro/core/__init__.py`` from
  ``repro.core.alert_tree``: the edge goes to the package *and* a
  ``via``-tagged edge goes to the defining module, followed through
  chained re-exports.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..engine import Project, SourceFile


@dataclasses.dataclass(frozen=True)
class ImportRecord:
    """One resolved project-internal import edge."""

    importer: str  # importing module's dotted name
    target: str  # resolved project module the edge points at
    raw: str  # the import as written, e.g. "from ..core import config"
    path: str  # importing file
    line: int
    col: int
    #: package ``__init__`` the name was re-exported through, when the
    #: written import named the package but the symbol lives deeper
    via: Optional[str] = None


def pseudo_module(source: SourceFile) -> str:
    """Node id for a file: its dotted module, or a path-based stand-in."""
    return source.module if source.module is not None else f"<{source.rel}>"


class ImportGraph:
    """Project-internal import edges over one lint run's files."""

    def __init__(self, project: Project):
        self._by_module: Dict[str, SourceFile] = {}
        for source in project.files:
            self._by_module.setdefault(pseudo_module(source), source)
        self.modules: Set[str] = set(self._by_module)
        self.records: List[ImportRecord] = []
        #: module -> local names its ``__init__``-style body re-exports,
        #: mapped to the (resolved) module the name was imported from
        self._reexports: Dict[str, Dict[str, str]] = {}
        #: module -> external (non-project) dotted imports, binding -> target
        self.external: Dict[str, Dict[str, str]] = {}
        for module, source in sorted(self._by_module.items()):
            self._scan_reexports(module, source)
        for module, source in sorted(self._by_module.items()):
            self._scan(module, source)
        self._imports: Dict[str, Set[str]] = {m: set() for m in self.modules}
        self._importers: Dict[str, Set[str]] = {m: set() for m in self.modules}
        for record in self.records:
            self._imports.setdefault(record.importer, set()).add(record.target)
            self._importers.setdefault(record.target, set()).add(record.importer)

    # -- construction ------------------------------------------------------

    def _package_of(self, module: str, source: SourceFile) -> List[str]:
        parts = module.split(".")
        if source.path.name == "__init__.py":
            return parts
        return parts[:-1]

    def _resolve_base(
        self, module: str, source: SourceFile, node: ast.ImportFrom
    ) -> Optional[List[str]]:
        """Package parts the ``from``-clause is anchored at, or None."""
        if node.level == 0:
            return (node.module or "").split(".") if node.module else []
        package = self._package_of(module, source)
        ups = node.level - 1
        if ups > len(package):
            return None
        base = package[: len(package) - ups] if ups else list(package)
        if node.module:
            base = base + node.module.split(".")
        return base

    def _project_module(self, parts: Sequence[str]) -> Optional[str]:
        dotted = ".".join(parts)
        return dotted if dotted in self.modules else None

    def _scan_reexports(self, module: str, source: SourceFile) -> None:
        """First pass: record which names a module imports from where."""
        if source.tree is None:
            return
        table: Dict[str, str] = {}
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            base = self._resolve_base(module, source, node)
            if base is None:
                continue
            for alias in node.names:
                as_sub = self._project_module(list(base) + [alias.name])
                target = as_sub or self._project_module(base)
                if target is not None:
                    table[alias.asname or alias.name] = (
                        as_sub or f"{target}:{alias.name}"
                    )
        self._reexports[module] = table

    def _follow_reexport(self, package: str, name: str) -> Optional[str]:
        """Module that ultimately defines ``package.name``, via re-exports."""
        seen: Set[str] = set()
        current, symbol = package, name
        for _ in range(8):  # bounded: re-export chains are short
            if current in seen:
                return None
            seen.add(current)
            entry = self._reexports.get(current, {}).get(symbol)
            if entry is None:
                return None
            if ":" not in entry:
                return entry  # the name *is* a submodule
            current, symbol = entry.split(":", 1)
            if self._reexports.get(current, {}).get(symbol) is None:
                return current  # defined (or at least bound) here
        return current

    def _add(self, module: str, source: SourceFile, node: ast.stmt,
             target: str, raw: str, via: Optional[str] = None) -> None:
        self.records.append(
            ImportRecord(
                importer=module,
                target=target,
                raw=raw,
                path=source.rel,
                line=node.lineno,
                col=node.col_offset + 1,
                via=via,
            )
        )

    def _scan(self, module: str, source: SourceFile) -> None:
        if source.tree is None:
            return
        externals: Dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    # longest project-module prefix wins; `import a.b.c`
                    # depends on every package on the path, the leaf says it
                    resolved = None
                    for end in range(len(parts), 0, -1):
                        resolved = self._project_module(parts[:end])
                        if resolved is not None:
                            break
                    if resolved is not None:
                        self._add(module, source, node, resolved,
                                  f"import {alias.name}")
                    else:
                        externals[alias.asname or parts[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_base(module, source, node)
                raw_mod = ("." * node.level) + (node.module or "")
                if base is None:
                    continue
                package = self._project_module(base)
                for alias in node.names:
                    raw = f"from {raw_mod} import {alias.name}"
                    submodule = self._project_module(list(base) + [alias.name])
                    if submodule is not None:
                        self._add(module, source, node, submodule, raw)
                    elif package is not None:
                        self._add(module, source, node, package, raw)
                        deeper = self._follow_reexport(package, alias.name)
                        if deeper is not None and deeper != package:
                            self._add(module, source, node, deeper, raw,
                                      via=package)
                    elif node.level == 0 and node.module:
                        externals[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        self.external[module] = externals

    # -- queries -----------------------------------------------------------

    def imports_of(self, module: str) -> Set[str]:
        """Modules ``module`` imports (directly), itself excluded."""
        return set(self._imports.get(module, set())) - {module}

    def importers_of(self, module: str) -> Set[str]:
        return set(self._importers.get(module, set())) - {module}

    def dependency_closure(self, modules: Iterable[str]) -> Set[str]:
        """``modules`` plus everything they transitively import."""
        out: Set[str] = set()
        stack = [m for m in modules if m in self.modules]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._imports.get(current, set()) - out)
        return out

    def dependent_closure(self, modules: Iterable[str]) -> Set[str]:
        """``modules`` plus everything that transitively imports them."""
        out: Set[str] = set()
        stack = [m for m in modules if m in self.modules]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._importers.get(current, set()) - out)
        return out

    def file_of(self, module: str) -> Optional[SourceFile]:
        return self._by_module.get(module)

    def cycles(self) -> List[List[str]]:
        """Import cycles: SCCs of size > 1 plus self-loops, sorted."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self._imports.get(root, set()))))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in self.modules:
                        continue
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self._imports.get(succ, set()))))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self._imports.get(
                        node, set()
                    ):
                        sccs.append(sorted(component))

        for module in sorted(self.modules):
            if module not in index:
                strongconnect(module)
        return sorted(sccs)
