"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def is_number_constant(node: ast.AST) -> bool:
    """True for int/float literals; bools are excluded on purpose."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def compare_pairs(node: ast.Compare) -> Iterator[Tuple[ast.cmpop, ast.AST, ast.AST]]:
    """Yield ``(op, left, right)`` for each link of a chained comparison."""
    left = node.left
    for op, right in zip(node.ops, node.comparators):
        yield op, left, right
        left = right


def class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def functions_of(node: ast.AST) -> Iterator[ast.FunctionDef]:
    """Direct function children of a module or class body."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child  # type: ignore[misc]


def all_arguments(args: ast.arguments) -> List[ast.arg]:
    """Every argument node of a signature, in declaration order."""
    out: List[ast.arg] = []
    out.extend(getattr(args, "posonlyargs", []))
    out.extend(args.args)
    if args.vararg is not None:
        out.append(args.vararg)
    out.extend(args.kwonlyargs)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


def base_names(cls: ast.ClassDef) -> List[str]:
    """Rightmost identifier of each base class expression."""
    names: List[str] = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def assigned_names(node: ast.stmt) -> List[str]:
    """Names bound by an Assign/AnnAssign statement."""
    targets: List[ast.expr]
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    else:
        return []
    return [t.id for t in targets if isinstance(t, ast.Name)]
