"""Text renderings: alert trees (Figure 5c) and reachability matrices
(Figure 7) for terminal-friendly inspection."""

from __future__ import annotations

from typing import Dict, List

from ..core.alert import AlertLevel
from ..core.alert_tree import AlertTree
from ..core.incident import Incident
from ..core.zoom_in import DARK_CELL_LOSS, ReachabilityMatrix
from ..topology.hierarchy import LocationPath

_LEVEL_TAGS = {
    AlertLevel.FAILURE: "failure",
    AlertLevel.ABNORMAL: "abnormal",
    AlertLevel.ROOT_CAUSE: "root_cause",
}


def render_alert_tree(tree: AlertTree) -> str:
    """Figure 5c-style indented rendering of the main tree."""
    locations = sorted(tree.locations(), key=lambda l: (l.segments, l.is_device))
    if not locations:
        return "<empty tree>"
    lines: List[str] = []
    for location in locations:
        depth = location.depth
        counts: Dict[AlertLevel, int] = {}
        for record in tree.records_at(location):
            counts[record.level] = counts.get(record.level, 0) + 1
        summary = ", ".join(
            f"{_LEVEL_TAGS[lvl]}: {counts[lvl]}"
            for lvl in (AlertLevel.FAILURE, AlertLevel.ABNORMAL, AlertLevel.ROOT_CAUSE)
            if lvl in counts
        )
        lines.append(f"{'  ' * depth}{location.name}  [{summary}]")
    return "\n".join(lines)


def render_incident_tree(incident: Incident) -> str:
    """The replicated incident subtree with per-node type lists."""
    lines = [f"{incident.incident_id} @ {incident.root}"]
    for location, records in sorted(
        incident.nodes().items(), key=lambda kv: str(kv[0])
    ):
        lines.append(f"  {location}")
        for record in sorted(records, key=lambda r: str(r.type_key)):
            lines.append(
                f"    {record.type_key} [{record.level.value}] x{record.count}"
            )
    return "\n".join(lines)


def render_matrix_heatmap(matrix: ReachabilityMatrix) -> str:
    """Coarse heat rendering: '.' light, '+' warm, '#' dark (Figure 7)."""
    lines: List[str] = []
    names = [loc.name for loc in matrix.locations]
    width = max((len(n) for n in names), default=4) + 1
    lines.append(" " * width + "".join(f"{n[-width + 1:]:>{width}}" for n in names))
    for a in matrix.locations:
        cells: List[str] = []
        for b in matrix.locations:
            loss = 0.0 if a == b else matrix.cell(a, b)
            if loss >= DARK_CELL_LOSS:
                mark = "#"
            elif loss > 0:
                mark = "+"
            else:
                mark = "."
            cells.append(f"{mark:>{width}}")
        lines.append(f"{a.name[-width + 1:]:>{width}}" + "".join(cells))
    return "\n".join(lines)
