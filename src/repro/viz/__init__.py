"""Visualization helpers (§7.1): alert voting, tree and matrix rendering."""

from .render import render_alert_tree, render_incident_tree, render_matrix_heatmap
from .voting import VotingGraph

__all__ = [
    "VotingGraph",
    "render_alert_tree",
    "render_incident_tree",
    "render_matrix_heatmap",
]
