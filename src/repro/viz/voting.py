"""Back-compat shim: :class:`VotingGraph` moved to ``repro.core.voting``.

The voting tallies are pipeline logic (the LLM export ranks suspects by
vote), so the class lives in ``core`` where the REP012 layering matrix
allows the pipeline to use it.  Rendering-side callers keep importing it
from here.
"""

from __future__ import annotations

from ..core.voting import VotingGraph

__all__ = ["VotingGraph"]
