"""repro: a reproduction of SkyNet (SIGCOMM 2025).

SkyNet analyses alert floods from severe network failures in large cloud
infrastructures: it normalises alerts from twelve monitoring data sources,
groups them into incidents over a hierarchical location tree, scores
incident severity from traffic and customer impact, and zooms in on the
failure location.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.topology` -- synthetic hierarchical cloud network substrate;
* :mod:`repro.simulation` -- failure injection and observable network state;
* :mod:`repro.monitors` -- the twelve monitoring tools of Table 2;
* :mod:`repro.syslogproc` -- FT-tree syslog template classification;
* :mod:`repro.core` -- SkyNet itself: preprocessor, locator, evaluator;
* :mod:`repro.rules` -- heuristic rules and automatic SOPs;
* :mod:`repro.baselines` -- single-source / window-grouping / rules-only;
* :mod:`repro.operators` -- the mitigation-time operator model;
* :mod:`repro.viz` -- alert voting and tree/matrix rendering;
* :mod:`repro.analysis` -- campaign harness and accuracy metrics.

Quickstart::

    from repro.analysis import run_campaign

    result = run_campaign(duration_s=900, n_random_failures=3)
    for report in result.reports:
        print(report.render())
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analysis,
    baselines,
    core,
    monitors,
    operators,
    rules,
    simulation,
    syslogproc,
    topology,
    viz,
)

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "core",
    "monitors",
    "operators",
    "rules",
    "simulation",
    "syslogproc",
    "topology",
    "viz",
]
