"""Single-data-source detection baseline (Figure 3, Table 1).

Existing tools build on one data source each; their failure coverage is
whatever that source happens to see.  This baseline answers, for one tool:
"did it raise *any* actionable alert attributable to a given failure?" --
the definition behind the per-tool coverage bars in Figure 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.alert_types import level_of
from ..monitors.base import RawAlert
from ..simulation.failures import GroundTruth
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology


class SingleSourceDetector:
    """Failure detection using exactly one monitoring data source."""

    def __init__(self, topology: Topology, tool: str) -> None:
        self._topo = topology
        self.tool = tool

    def actionable(self, raw: RawAlert) -> bool:
        """An alert counts when it is this tool's and not INFO chatter.

        Syslog raw alerts carry unclassified lines; any non-chatter severity
        head (``%X-0..3-``) counts as actionable for the single-source view.
        """
        if raw.tool != self.tool:
            return False
        if self.tool == "syslog":
            head = raw.message.split(":", 1)[0]
            return any(f"-{sev}-" in head for sev in (0, 1, 2, 3, 4, 5)) and (
                "LOGIN" not in head and "CONFIG_I" not in head and "SSH" not in head
            )
        return level_of(raw.tool, raw.raw_type).counts_for_incidents

    def alert_location(self, raw: RawAlert) -> Optional[LocationPath]:
        if raw.device is not None and self._topo.has_device(raw.device):
            return self._topo.device(raw.device).location
        if raw.location_hint is not None:
            return raw.location_hint
        if raw.endpoints:
            for end in raw.endpoints:
                server = self._topo.servers.get(end)
                if server is not None:
                    return server.cluster
        return None

    def detects(self, alerts: Iterable[RawAlert], truth: GroundTruth,
                slack_s: float = 120.0) -> bool:
        """True when any actionable alert falls inside the failure's time
        window (plus polling slack) and location scope."""
        for raw in alerts:
            if not self.actionable(raw):
                continue
            if not (truth.start - slack_s <= raw.timestamp <= truth.end + slack_s):
                continue
            location = self.alert_location(raw)
            if location is None:
                continue
            if truth.scope.contains(location) or location.contains(truth.scope):
                return True
        return False


def coverage_by_tool(
    topology: Topology,
    alerts: Sequence[RawAlert],
    truths: Sequence[GroundTruth],
    tools: Sequence[str],
) -> Dict[str, float]:
    """Fraction of failures each tool detects (the Figure 3 bars)."""
    if not truths:
        raise ValueError("need at least one ground-truth failure")
    by_tool: Dict[str, float] = {}
    for tool in tools:
        detector = SingleSourceDetector(topology, tool)
        tool_alerts = [a for a in alerts if a.tool == tool]
        detected = sum(1 for t in truths if detector.detects(tool_alerts, t))
        by_tool[tool] = detected / len(truths)
    return by_tool
