"""Baselines SkyNet is compared against (DESIGN.md §3)."""

from .heuristic_only import HeuristicOnlySystem, HeuristicOutcome
from .single_source import SingleSourceDetector, coverage_by_tool
from .window_grouping import AlertGroup, WindowGroupingDetector

__all__ = [
    "AlertGroup",
    "HeuristicOnlySystem",
    "HeuristicOutcome",
    "SingleSourceDetector",
    "WindowGroupingDetector",
    "coverage_by_tool",
]
