"""Alertmanager-style time/label grouping baseline.

The obvious prior art for alert flooding is grouping by a fixed label set
and time bucket (what Prometheus Alertmanager's ``group_by`` does).  It has
no alert levels, no thresholds, no topology connectivity and no severity --
so it either over-groups (coarse label) or floods (fine label).  SkyNet's
accuracy benches compare against it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.alert import StructuredAlert
from ..core.config import PRODUCTION_CONFIG
from ..topology.hierarchy import Level, LocationPath


@dataclasses.dataclass
class AlertGroup:
    """One grouped notification: a (label, window) bucket of alerts."""

    location: LocationPath
    window_start: float
    alerts: List[StructuredAlert]

    @property
    def start(self) -> float:
        return min(a.first_seen for a in self.alerts)

    @property
    def end(self) -> float:
        return max(a.last_seen for a in self.alerts)

    @property
    def size(self) -> int:
        return sum(a.count for a in self.alerts)


class WindowGroupingDetector:
    """Fixed-window, fixed-level grouping of structured alerts."""

    # default bucket width = SkyNet's 5-min node timeout so the baseline
    # and the main tree see the same horizon (single-sourced from config)
    def __init__(self, group_level: Level = Level.SITE,
                 window_s: float = PRODUCTION_CONFIG.node_timeout_s,
                 min_alerts: int = 1) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.group_level = group_level
        self.window_s = window_s
        self.min_alerts = min_alerts

    def _label(self, location: LocationPath) -> LocationPath:
        if location.structural_level.value <= self.group_level.value:
            return location if not location.is_device else location.parent
        return location.truncate(self.group_level)

    def group(self, alerts: Sequence[StructuredAlert]) -> List[AlertGroup]:
        """Bucket alerts by (group label, time window)."""
        buckets: Dict[Tuple[LocationPath, int], List[StructuredAlert]] = {}
        for alert in alerts:
            label = self._label(alert.location)
            window = int(alert.last_seen // self.window_s)
            buckets.setdefault((label, window), []).append(alert)
        groups = [
            AlertGroup(location=label, window_start=window * self.window_s,
                       alerts=members)
            for (label, window), members in buckets.items()
            if len(members) >= self.min_alerts
        ]
        return sorted(groups, key=lambda g: (g.window_start, str(g.location)))
