"""The pre-SkyNet production system: heuristic rules over raw alerts (§7.2).

Per-device alert buckets are matched against the rule library; known
failures get their SOP executed automatically, everything else is left to
a human staring at the raw flood.  This is the "before SkyNet" arm of the
Figure 10c mitigation-time comparison.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.alert import StructuredAlert
from ..core.incident import Incident
from ..core.preprocessor import Preprocessor
from ..monitors.base import RawAlert
from ..rules.engine import RuleContext, RuleEngine, RuleMatch
from ..rules.library import default_rule_library
from ..simulation.state import NetworkState
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology


@dataclasses.dataclass
class HeuristicOutcome:
    """What the rule system did about one alerting device."""

    location: LocationPath
    matched: Optional[RuleMatch]
    alerts: List[StructuredAlert]

    @property
    def handled(self) -> bool:
        return self.matched is not None


class HeuristicOnlySystem:
    """Rules-without-SkyNet: per-device buckets, first matching rule wins."""

    def __init__(self, topology: Topology, state: Optional[NetworkState] = None,
                 engine: Optional[RuleEngine] = None) -> None:
        self._topo = topology
        self._state = state
        self._engine = engine or RuleEngine(default_rule_library())
        # reuse the preprocessor purely for classification/location; the
        # legacy system had per-tool parsers doing the same normalisation
        self._preprocessor = Preprocessor(topology)

    @property
    def engine(self) -> RuleEngine:
        return self._engine

    def run(self, raw_alerts: Sequence[RawAlert], now: float
            ) -> List[HeuristicOutcome]:
        """Bucket alerts per device location and try the rules on each."""
        structured = self._preprocessor.process(raw_alerts)
        buckets: Dict[LocationPath, List[StructuredAlert]] = {}
        for alert in structured:
            key = alert.location if alert.location.is_device else alert.location
            buckets.setdefault(key, []).append(alert)
        outcomes: List[HeuristicOutcome] = []
        for location, alerts in sorted(buckets.items(), key=lambda kv: str(kv[0])):
            incident = _pseudo_incident(location, alerts)
            ctx = RuleContext(
                incident=incident, topology=self._topo, state=self._state, now=now
            )
            outcomes.append(
                HeuristicOutcome(
                    location=location,
                    matched=self._engine.match(ctx),
                    alerts=alerts,
                )
            )
        return outcomes

    def unhandled(self, outcomes: Sequence[HeuristicOutcome]) -> List[HeuristicOutcome]:
        """The buckets no rule matched: unknown failures left to humans."""
        return [o for o in outcomes if not o.handled]


def _pseudo_incident(location: LocationPath, alerts: Sequence[StructuredAlert]
                     ) -> Incident:
    """Wrap a per-location alert bucket in an Incident so rules can inspect
    it with the same predicates they use inside SkyNet."""
    incident = Incident(root=location, created_at=min(a.first_seen for a in alerts),
                        seed_nodes={})
    for alert in alerts:
        incident.add(alert)
    return incident
